package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/state"
)

// serverStateVersion is the component version of the server's checkpoint
// spec section (the 'V' block in front of the fleet engine's 'Z' block).
const serverStateVersion = 1

// DefaultCheckpointName is the checkpoint filename used when a checkpoint
// request does not name one.
const DefaultCheckpointName = "fleet.awds"

// DefaultMaxInflight is the per-connection cap on decided-but-unwritten
// responses when Config.MaxInflight is zero. It bounds both the server's
// buffering and how far a pipelined client can run ahead of its decisions.
const DefaultMaxInflight = 256

// DefaultFlushInterval is the flush coalescing deadline when
// Config.FlushInterval is zero: a decided response never sits in the
// writer's buffer longer than this while the connection stays busy.
const DefaultFlushInterval = 200 * time.Microsecond

// Config describes one fleet server.
type Config struct {
	// CheckpointDir is where Checkpoint writes and Restore reads whole-
	// fleet snapshots. Empty disables both RPCs.
	CheckpointDir string
	// MaxStreamsPerTenant caps the streams each tenant may hold open;
	// <= 0 means unlimited.
	MaxStreamsPerTenant int
	// Workers, ShardSize, and MaxBatch pass through to fleet.Config.
	Workers, ShardSize, MaxBatch int
	// MaxInflight caps the responses a connection's writer may hold
	// decided but unflushed; a pipelined client stalls (backpressure)
	// beyond it. <= 0 uses DefaultMaxInflight.
	MaxInflight int
	// FlushInterval bounds how long a decided response may wait for
	// coalescing while more requests keep arriving; the writer always
	// flushes immediately when the connection goes idle. <= 0 uses
	// DefaultFlushInterval.
	FlushInterval time.Duration
	// Observer receives fleet telemetry; nil disables instrumentation.
	Observer *obs.Observer
}

// maxInflight resolves the configured in-flight window.
func (c Config) maxInflight() int {
	if c.MaxInflight > 0 {
		return c.MaxInflight
	}
	return DefaultMaxInflight
}

// flushInterval resolves the configured coalescing deadline.
func (c Config) flushInterval() time.Duration {
	if c.FlushInterval > 0 {
		return c.FlushInterval
	}
	return DefaultFlushInterval
}

// streamSpec is everything needed to reconstruct a stream's detector: its
// identity plus the semantic configuration the state codec deliberately
// does not carry (see fleet.MakeStream).
type streamSpec struct {
	tenant, stream string
	model          string
	strategy       sim.Strategy
	fixedWin       int
}

func (sp streamSpec) id() string { return sp.tenant + "/" + sp.stream }

func (sp streamSpec) detector(o *obs.Observer) (*core.System, error) {
	m := models.ByName(sp.model)
	if m == nil {
		return nil, fmt.Errorf("wire: unknown model %q (valid: %s)", sp.model, strings.Join(models.Names(), ", "))
	}
	return sim.Detector(sim.Config{Model: m, Strategy: sp.strategy, FixedWin: sp.fixedWin, Observer: o})
}

// parseStrategy maps the wire's strategy names back onto sim.Strategy;
// the names are sim.Strategy.String()'s, which are part of the protocol.
func parseStrategy(s string) (sim.Strategy, error) {
	for _, st := range []sim.Strategy{sim.Adaptive, sim.FixedWindow, sim.CUSUMBaseline, sim.EWMABaseline} {
		if s == st.String() {
			return st, nil
		}
	}
	return 0, fmt.Errorf("wire: unknown strategy %q", s)
}

// Server hosts one fleet engine behind the binary TCP protocol and the
// HTTP/JSON fallback. Streams live in per-tenant namespaces (the fleet
// stream ID is "tenant/stream"), with an optional per-tenant open-stream
// quota. Checkpoint, Drain, and Restore manage whole-fleet snapshots.
type Server struct {
	cfg Config
	eng *fleet.Engine

	// ingestMu serializes checkpoint/drain/restore (writers) against
	// ingest (readers): a checkpoint takes the write side so the spec
	// registry and the engine snapshot form one consistent cut, while
	// steady-state ingests share the read side and never contend with
	// each other.
	ingestMu sync.RWMutex

	mu         sync.Mutex // guards the registries below
	specs      map[string]streamSpec
	handles    map[uint64]*fleet.Stream // open handle -> engine stream
	nextHandle uint64
	tenants    map[string]int // tenant -> open stream count
	draining   bool

	ln      net.Listener
	conns   sync.WaitGroup
	closed  atomic.Bool
	httpSrv *httpServer
}

// NewServer returns a server over a fresh fleet engine. Call Start (or
// StartHTTP) to accept connections and Close to shut down.
func NewServer(cfg Config) *Server {
	return &Server{
		cfg: cfg,
		eng: fleet.New(fleet.Config{
			Workers:   cfg.Workers,
			ShardSize: cfg.ShardSize,
			MaxBatch:  cfg.MaxBatch,
			Observer:  cfg.Observer,
		}),
		specs:   make(map[string]streamSpec),
		handles: make(map[uint64]*fleet.Stream),
		tenants: make(map[string]int),
	}
}

// Engine exposes the wrapped fleet engine (read-only use: stats, tests).
func (s *Server) Engine() *fleet.Engine { return s.eng }

// Open registers (or re-attaches to) the stream tenant/stream and returns
// an ingest handle. Open is idempotent on identical specs: after a server
// restart plus Restore the streams already exist in the engine, and a
// reconnecting client's Open re-binds a fresh handle to the restored
// stream instead of failing — the checkpoint lifecycle depends on this.
// A spec that conflicts with the live stream's is an error, as is
// exceeding the tenant's stream quota.
func (s *Server) Open(tenant, stream, model, strategy string, fixedWin int) (uint64, error) {
	if tenant == "" || strings.Contains(tenant, "/") {
		return 0, fmt.Errorf("wire: invalid tenant %q", tenant)
	}
	if stream == "" {
		return 0, errors.New("wire: empty stream name")
	}
	strat, err := parseStrategy(strategy)
	if err != nil {
		return 0, err
	}
	spec := streamSpec{tenant: tenant, stream: stream, model: model, strategy: strat, fixedWin: fixedWin}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, errors.New("wire: server is draining")
	}
	if have, ok := s.specs[spec.id()]; ok {
		if have != spec {
			return 0, fmt.Errorf("wire: stream %s already open with a different spec", spec.id())
		}
		st, ok := s.eng.Stream(spec.id())
		if !ok {
			return 0, fmt.Errorf("wire: stream %s has a spec but no engine state", spec.id())
		}
		return s.bindHandle(st), nil
	}
	if q := s.cfg.MaxStreamsPerTenant; q > 0 && s.tenants[tenant] >= q {
		return 0, fmt.Errorf("wire: tenant %q at stream quota %d", tenant, q)
	}
	det, err := spec.detector(s.cfg.Observer)
	if err != nil {
		return 0, err
	}
	st, err := s.eng.AddStream(spec.id(), det, nil)
	if err != nil {
		return 0, err
	}
	s.specs[spec.id()] = spec
	s.tenants[tenant]++
	return s.bindHandle(st), nil
}

// bindHandle allocates a fresh handle for an open stream. Caller holds mu.
func (s *Server) bindHandle(st *fleet.Stream) uint64 {
	s.nextHandle++
	s.handles[s.nextHandle] = st
	return s.nextHandle
}

// Ingest feeds one sample to the stream behind handle and returns its
// decision synchronously — the response frame is the decision stream.
func (s *Server) Ingest(handle uint64, estimate, appliedU []float64) (core.Decision, error) {
	s.ingestMu.RLock()
	defer s.ingestMu.RUnlock()
	s.mu.Lock()
	st := s.handles[handle]
	draining := s.draining
	s.mu.Unlock()
	if st == nil {
		return core.Decision{}, fmt.Errorf("wire: unknown handle %d", handle)
	}
	if draining {
		return core.Decision{}, errors.New("wire: server is draining")
	}
	return st.Submit(mat.Vec(estimate), mat.Vec(appliedU))
}

// IngestBatch feeds one sample per item through the fleet's batched submit
// seam: handles are resolved under the registry lock in one pass (unknown
// handles leave their item's Stream nil and fail per-item), then every
// sample is admitted in one Batcher.Submit call so distinct streams step
// as shard batches instead of one blocking round trip each. The whole
// batch shares one ingestMu read hold, so a checkpoint quiesces at batch
// granularity — it can never cut a batch in half. items[i].Estimate and
// items[i].AppliedU must be filled by the caller; out must match len.
func (s *Server) IngestBatch(bt *fleet.Batcher, handles []uint64, items []fleet.BatchItem, out []fleet.BatchResult) error {
	if len(items) != len(handles) || len(out) != len(handles) {
		return fmt.Errorf("wire: batch slice lengths %d/%d/%d differ", len(handles), len(items), len(out))
	}
	s.ingestMu.RLock()
	defer s.ingestMu.RUnlock()
	s.mu.Lock()
	draining := s.draining
	for i, h := range handles {
		items[i].Stream = s.handles[h]
	}
	s.mu.Unlock()
	if draining {
		return errors.New("wire: server is draining")
	}
	return bt.Submit(items, out)
}

// Checkpoint quiesces ingest and writes the whole fleet — stream specs
// plus every stream's runtime state — to name (default
// DefaultCheckpointName) under the checkpoint directory, atomically.
// It returns the written path and the snapshot size in bytes.
func (s *Server) Checkpoint(name string) (string, int, error) {
	if s.cfg.CheckpointDir == "" {
		return "", 0, errors.New("wire: server has no checkpoint directory")
	}
	if name == "" {
		name = DefaultCheckpointName
	}
	if name != filepath.Base(name) {
		return "", 0, fmt.Errorf("wire: checkpoint name %q must not contain path separators", name)
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()

	enc := state.NewEncoder()
	enc.Header()
	s.mu.Lock()
	specs := make([]streamSpec, 0, len(s.specs))
	for _, sp := range s.specs {
		specs = append(specs, sp)
	}
	s.mu.Unlock()
	sort.Slice(specs, func(i, j int) bool { return specs[i].id() < specs[j].id() })
	enc.Begin(state.TagServer, serverStateVersion)
	enc.U32(uint32(len(specs)))
	for _, sp := range specs {
		enc.String(sp.tenant)
		enc.String(sp.stream)
		enc.String(sp.model)
		enc.String(sp.strategy.String())
		enc.Int(sp.fixedWin)
	}
	//awdlint:allow lockflow -- quiesce barrier by design: holding ingestMu for the encode is what makes the checkpoint a consistent cut (ingest blocks, nothing is mid-decision)
	if err := s.eng.Snapshot(enc); err != nil {
		return "", 0, err
	}
	path := filepath.Join(s.cfg.CheckpointDir, name)
	if err := state.WriteFile(path, enc.Bytes()); err != nil {
		return "", 0, err
	}
	return path, enc.Len(), nil
}

// Drain stops admitting ingest and new streams, waits for in-flight
// ingests to finish, and leaves the fleet quiescent — the state a final
// Checkpoint before shutdown wants. Draining is sticky; a drained server
// only serves Checkpoint and stats.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	// Taking the write side waits out every ingest that entered before the
	// flag flipped.
	s.ingestMu.Lock()
	s.ingestMu.Unlock() //nolint:staticcheck // empty critical section is the drain barrier
}

// Restore loads a checkpoint written by Checkpoint into this server,
// which must not have any open streams yet: it rebuilds each recorded
// stream's detector from its spec and restores the fleet's runtime state,
// after which reconnecting clients re-attach via idempotent Opens and the
// decision streams continue bit-identically to the checkpointed fleet.
func (s *Server) Restore(name string) (int, error) {
	if s.cfg.CheckpointDir == "" {
		return 0, errors.New("wire: server has no checkpoint directory")
	}
	if name == "" {
		name = DefaultCheckpointName
	}
	if name != filepath.Base(name) {
		return 0, fmt.Errorf("wire: checkpoint name %q must not contain path separators", name)
	}
	blob, err := state.ReadFile(filepath.Join(s.cfg.CheckpointDir, name))
	if err != nil {
		return 0, err
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.specs) != 0 {
		return 0, fmt.Errorf("wire: restore into a server with %d streams", len(s.specs))
	}
	if s.draining {
		return 0, errors.New("wire: server is draining")
	}

	dec := state.NewDecoder(blob)
	if err := dec.Header(); err != nil {
		return 0, err
	}
	dec.Expect(state.TagServer, serverStateVersion)
	n := dec.U32()
	if err := dec.Err(); err != nil {
		return 0, err
	}
	specs := make(map[string]streamSpec, n)
	for i := 0; i < int(n); i++ {
		var sp streamSpec
		var strategy string
		sp.tenant = dec.String()
		sp.stream = dec.String()
		sp.model = dec.String()
		strategy = dec.String()
		sp.fixedWin = dec.Int()
		if err := dec.Err(); err != nil {
			return 0, err
		}
		if sp.strategy, err = parseStrategy(strategy); err != nil {
			return 0, err
		}
		specs[sp.id()] = sp
	}
	//awdlint:allow lockflow -- restore must rebuild the fleet before any ingest can run; holding ingestMu+mu for the decode is the barrier that guarantees it
	err = s.eng.Restore(dec, func(id string) (*core.System, func(core.Decision, error), error) {
		sp, ok := specs[id]
		if !ok {
			return nil, nil, fmt.Errorf("wire: checkpoint stream %q has no spec", id)
		}
		det, err := sp.detector(s.cfg.Observer)
		return det, nil, err
	})
	if err != nil {
		return 0, err
	}
	for id, sp := range specs {
		s.specs[id] = sp
		s.tenants[sp.tenant]++
	}
	return len(specs), nil
}

// Stats is the server's live state summary, served on GET /v1/stats.
type Stats struct {
	Streams  int            `json:"streams"`
	Tenants  map[string]int `json:"tenants"`
	Draining bool           `json:"draining"`
}

// Stats snapshots the server's stream registry.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	tenants := make(map[string]int, len(s.tenants))
	for k, v := range s.tenants {
		tenants[k] = v
	}
	return Stats{Streams: len(s.specs), Tenants: tenants, Draining: s.draining}
}

// Start listens on addr for the binary protocol and serves connections
// until Close. It returns the bound address (useful with ":0").
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.conns.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.conns.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// connState is one connection's reusable scratch: the frame read buffer,
// request decoder, response encoder, ingest vectors, and the batch
// machinery. Everything is sized by the largest request seen so far, so a
// warm connection's ingest path runs without allocating.
type connState struct {
	frame   []byte
	dec     state.Decoder
	enc     *state.Encoder
	est, u  []float64
	batch   ingestBatch
	items   []fleet.BatchItem
	results []fleet.BatchResult
	batcher *fleet.Batcher
}

func newConnState(eng *fleet.Engine) *connState {
	return &connState{enc: state.NewEncoder(), batcher: eng.NewBatcher()}
}

// outFrame is one queued response: type plus a payload buffer the writer
// owns until it recycles it through the connection's free list.
type outFrame struct {
	typ     byte
	payload []byte
}

// serveConn runs one connection. The reader half decodes and handles
// request frames strictly in arrival order — which is what guarantees
// responses are delivered in request order — and hands each response to
// the writer half over a bounded queue; the queue's capacity is the
// connection's in-flight window, so a pipelined client that outruns the
// writer blocks here instead of ballooning server memory. Protocol errors
// are answered with MsgError and the loop continues; transport errors end
// the connection.
func (s *Server) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	cs := newConnState(s.eng)
	inflight := s.cfg.maxInflight()
	out := make(chan outFrame, inflight)
	free := make(chan []byte, inflight)
	writerDone := make(chan struct{})
	go s.writeLoop(conn, out, free, writerDone)
	for {
		typ, payload, err := readFrameInto(br, &cs.frame)
		if err != nil {
			break
		}
		rtyp, rp := s.handleReq(cs, typ, payload)
		// rp aliases cs.enc's buffer, which the next handleReq reuses, so
		// the queued copy lives in a recycled buffer from the free list.
		var buf []byte
		select {
		case buf = <-free:
		default:
		}
		out <- outFrame{typ: rtyp, payload: append(buf[:0], rp...)}
	}
	close(out)
	<-writerDone
}

// writeLoop drains one connection's response queue with coalesced
// flushes: it flushes when the queue goes empty (the client is blocked
// waiting on a decision) or when flushInterval has elapsed since the last
// flush (bounding decision latency while the pipeline stays saturated);
// between those points bufio batches frames into large writes. After a
// write error it closes the connection — unblocking the reader — and
// keeps draining the queue so the reader never blocks on send.
func (s *Server) writeLoop(conn net.Conn, out <-chan outFrame, free chan<- []byte, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriter(conn)
	interval := s.cfg.flushInterval()
	broken := false
	lastFlush := time.Now()
	for f := range out {
		if !broken {
			if err := writeFrame(bw, f.typ, f.payload); err != nil {
				broken = true
				conn.Close()
			}
		}
		// Recycle the buffer; never blocks because free's capacity matches
		// the queue's.
		select {
		case free <- f.payload:
		default:
		}
		if broken {
			continue
		}
		if len(out) == 0 || time.Since(lastFlush) >= interval {
			if err := bw.Flush(); err != nil {
				broken = true
				conn.Close()
			}
			lastFlush = time.Now()
		}
	}
	if !broken {
		bw.Flush()
	}
}

// handleReq dispatches one request frame and builds its response frame in
// the connection's scratch encoder. The returned payload aliases that
// encoder and is valid until the next call.
func (s *Server) handleReq(cs *connState, typ byte, payload []byte) (byte, []byte) {
	dec := &cs.dec
	dec.Reset(payload)
	enc := cs.enc
	enc.Reset()
	fail := func(err error) (byte, []byte) {
		enc.Reset()
		enc.String(err.Error())
		return MsgError, enc.Bytes()
	}
	switch typ {
	case MsgHello:
		v := dec.U16()
		_ = dec.String() // client name: diagnostic only
		if err := dec.Err(); err != nil {
			return fail(err)
		}
		if v > ProtocolVersion {
			return fail(fmt.Errorf("wire: client speaks protocol %d, server %d", v, ProtocolVersion))
		}
		enc.String("awdserve")
		enc.U16(ProtocolVersion)
		return MsgOK, enc.Bytes()
	case MsgOpen:
		tenant := dec.String()
		stream := dec.String()
		model := dec.String()
		strategy := dec.String()
		fixedWin := dec.Int()
		if err := dec.Err(); err != nil {
			return fail(err)
		}
		h, err := s.Open(tenant, stream, model, strategy, fixedWin)
		if err != nil {
			return fail(err)
		}
		enc.U64(h)
		return MsgOpened, enc.Bytes()
	case MsgIngest:
		h := dec.U64()
		var err error
		if cs.est, err = decodeF64sInto(dec, cs.est); err != nil {
			return fail(err)
		}
		if cs.u, err = decodeF64sInto(dec, cs.u); err != nil {
			return fail(err)
		}
		d, err := s.Ingest(h, cs.est, cs.u)
		if err != nil {
			return fail(err)
		}
		appendDecision(enc, d)
		return MsgDecision, enc.Bytes()
	case MsgIngestBatch:
		if err := cs.batch.decode(payload); err != nil {
			return fail(err)
		}
		b := &cs.batch
		n := len(b.handles)
		cs.items = cs.items[:0]
		cs.results = cs.results[:0]
		for i := 0; i < n; i++ {
			cs.items = append(cs.items, fleet.BatchItem{Estimate: mat.Vec(b.ests[i]), AppliedU: mat.Vec(b.us[i])})
			cs.results = append(cs.results, fleet.BatchResult{})
		}
		if err := s.IngestBatch(cs.batcher, b.handles, cs.items, cs.results); err != nil {
			return fail(err)
		}
		enc.U32(uint32(n))
		for i := range cs.results {
			appendBatchDecision(enc, cs.results[i].Decision, cs.results[i].Err)
		}
		return MsgDecisionBatch, enc.Bytes()
	case MsgCheckpoint:
		name := dec.String()
		if err := dec.Err(); err != nil {
			return fail(err)
		}
		path, n, err := s.Checkpoint(name)
		if err != nil {
			return fail(err)
		}
		enc.String(fmt.Sprintf("%s (%d bytes)", path, n))
		return MsgOK, enc.Bytes()
	case MsgDrain:
		s.Drain()
		enc.String("drained")
		return MsgOK, enc.Bytes()
	case MsgRestore:
		name := dec.String()
		if err := dec.Err(); err != nil {
			return fail(err)
		}
		n, err := s.Restore(name)
		if err != nil {
			return fail(err)
		}
		enc.String(fmt.Sprintf("%d streams", n))
		return MsgOK, enc.Bytes()
	default:
		return fail(fmt.Errorf("wire: unknown message type 0x%02x", typ))
	}
}

// decodeF64sInto reads a length-prefixed float slice into buf's capacity,
// growing it only when a vector exceeds every previous one — the steady-
// state ingest path therefore decodes without allocating. The claimed
// length is bounds-checked against the remaining payload before any
// growth.
func decodeF64sInto(dec *state.Decoder, buf []float64) ([]float64, error) {
	n := dec.U32()
	if err := dec.Err(); err != nil {
		return buf, err
	}
	if int(n) > dec.Remaining()/8 {
		return buf, fmt.Errorf("wire: vector claims %d floats in %d bytes", n, dec.Remaining())
	}
	if cap(buf) < int(n) {
		buf = make([]float64, n)
	}
	v := buf[:n]
	for i := range v {
		v[i] = dec.F64()
	}
	return v, dec.Err()
}

// Close shuts the listeners, waits out in-flight connections, and closes
// the fleet engine (draining every stream's last sample).
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.ln != nil {
		s.ln.Close()
	}
	if s.httpSrv != nil {
		s.httpSrv.close()
	}
	s.conns.Wait()
	return s.eng.Close()
}
