package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/state"
)

// FuzzFrameRoundTrip drives the frame codec with arbitrary byte streams.
// The invariants under test:
//
//   - readFrame never panics and never over-reads: on success it has
//     consumed exactly 5+len(payload) bytes, leaving the rest of the
//     stream intact for the next frame.
//   - A length prefix beyond MaxFrame is rejected before any allocation.
//   - Truncated input errors cleanly (io.ErrUnexpectedEOF family), never
//     blocks or fabricates a frame.
//   - Whatever readFrame accepts, writeFrame reproduces byte-for-byte —
//     the codec is its own inverse on the valid subset.
//   - A frame tagged MsgDecision feeds decodeDecision without panicking,
//     whatever its payload (the claimed-dims bound must hold).
func FuzzFrameRoundTrip(f *testing.F) {
	// Seed with a valid OK frame, a decision frame, a truncated header, an
	// oversized length prefix, and a length/payload mismatch.
	var ok bytes.Buffer
	if err := writeFrame(&ok, MsgOK, []byte("ready")); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())

	enc := state.NewEncoder()
	enc.I64(7)      // step
	enc.Int(12)     // window
	enc.Int(3)      // deadline
	enc.Bool(true)  // alarm
	enc.Bool(false) // complementary
	enc.I64(-1)     // complementary step
	enc.U32(2)      // dims
	enc.Int(0)
	enc.Int(4)
	var decFrame bytes.Buffer
	if err := writeFrame(&decFrame, MsgDecision, enc.Bytes()); err != nil {
		f.Fatal(err)
	}
	f.Add(decFrame.Bytes())

	f.Add([]byte{3, 0, 0}) // truncated header
	var huge [5]byte
	binary.LittleEndian.PutUint32(huge[:4], MaxFrame+1)
	f.Add(huge[:])                         // oversized length prefix
	f.Add([]byte{9, 0, 0, 0, MsgOK, 1, 2}) // claims 9 payload bytes, has 2

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		typ, payload, err := readFrame(r)
		if err != nil {
			// Rejected input: the error must have surfaced without a frame.
			if payload != nil {
				t.Fatalf("readFrame returned payload alongside error %v", err)
			}
			return
		}
		// Exact-consumption check: success means precisely one header plus
		// one payload was taken from the stream.
		consumed := len(data) - r.Len()
		if want := 5 + len(payload); consumed != want {
			t.Fatalf("readFrame consumed %d bytes, want %d", consumed, want)
		}
		if len(payload) > MaxFrame {
			t.Fatalf("readFrame accepted %d-byte payload beyond MaxFrame", len(payload))
		}

		// Round trip: re-encoding the accepted frame reproduces the input
		// prefix bit-for-bit.
		var out bytes.Buffer
		if err := writeFrame(&out, typ, payload); err != nil {
			t.Fatalf("writeFrame rejected a frame readFrame accepted: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("round trip mismatch:\n read %x\nwrote %x", data[:consumed], out.Bytes())
		}

		// Decision payloads must decode or error — never panic, never claim
		// dims beyond the payload.
		if typ == MsgDecision {
			d, err := decodeDecision(state.NewDecoder(payload))
			if err == nil && len(d.Dims) > len(payload)/8 {
				t.Fatalf("decoded %d dims from %d payload bytes", len(d.Dims), len(payload))
			}
		}

		// A second frame may follow; it must obey the same contract.
		rest := len(data) - consumed
		if _, p2, err := readFrame(r); err == nil {
			if consumed2 := rest - r.Len(); consumed2 != 5+len(p2) {
				t.Fatalf("second readFrame consumed %d bytes, want %d", consumed2, 5+len(p2))
			}
		} else if err != io.EOF && err != io.ErrUnexpectedEOF && rest >= 5 {
			// Non-EOF failures with a full header present must be the
			// MaxFrame guard, which precedes allocation.
			n := binary.LittleEndian.Uint32(data[consumed : consumed+4])
			if n <= MaxFrame {
				t.Fatalf("second readFrame failed on in-bound frame: %v", err)
			}
		}
	})
}
