package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/state"
)

// FuzzFrameRoundTrip drives the frame codec with arbitrary byte streams.
// The invariants under test:
//
//   - readFrame never panics and never over-reads: on success it has
//     consumed exactly 5+len(payload) bytes, leaving the rest of the
//     stream intact for the next frame.
//   - A length prefix beyond MaxFrame is rejected before any allocation.
//   - Truncated input errors cleanly (io.ErrUnexpectedEOF family), never
//     blocks or fabricates a frame.
//   - Whatever readFrame accepts, writeFrame reproduces byte-for-byte —
//     the codec is its own inverse on the valid subset.
//   - A frame tagged MsgDecision feeds decodeDecision without panicking,
//     whatever its payload (the claimed-dims bound must hold).
//   - A frame tagged MsgIngestBatch feeds ingestBatch.decode without
//     panicking; anything it accepts re-encodes byte-identically through
//     appendIngestBatch (exact consumption makes the batch codec its own
//     inverse).
//   - A frame tagged MsgDecisionBatch feeds decodeDecisionBatch without
//     panicking, whatever its claimed count.
func FuzzFrameRoundTrip(f *testing.F) {
	// Seed with a valid OK frame, a decision frame, a truncated header, an
	// oversized length prefix, and a length/payload mismatch.
	var ok bytes.Buffer
	if err := writeFrame(&ok, MsgOK, []byte("ready")); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())

	enc := state.NewEncoder()
	enc.I64(7)      // step
	enc.Int(12)     // window
	enc.Int(3)      // deadline
	enc.Bool(true)  // alarm
	enc.Bool(false) // complementary
	enc.I64(-1)     // complementary step
	enc.U32(2)      // dims
	enc.Int(0)
	enc.Int(4)
	var decFrame bytes.Buffer
	if err := writeFrame(&decFrame, MsgDecision, enc.Bytes()); err != nil {
		f.Fatal(err)
	}
	f.Add(decFrame.Bytes())

	// A two-sample ingest batch and its decision batch.
	enc.Reset()
	appendIngestBatch(enc,
		[]uint64{1, 2},
		[][]float64{{0.5, -1.25}, {3}},
		[][]float64{{0}, {}})
	var batchFrame bytes.Buffer
	if err := writeFrame(&batchFrame, MsgIngestBatch, enc.Bytes()); err != nil {
		f.Fatal(err)
	}
	f.Add(batchFrame.Bytes())

	enc.Reset()
	enc.U32(2)
	appendBatchDecision(enc, core.Decision{Step: 3, Window: 9, Deadline: 2, Dims: []int{1}}, nil)
	appendBatchDecision(enc, core.Decision{}, errors.New("fleet: unknown stream"))
	var decBatchFrame bytes.Buffer
	if err := writeFrame(&decBatchFrame, MsgDecisionBatch, enc.Bytes()); err != nil {
		f.Fatal(err)
	}
	f.Add(decBatchFrame.Bytes())

	f.Add([]byte{3, 0, 0}) // truncated header
	var huge [5]byte
	binary.LittleEndian.PutUint32(huge[:4], MaxFrame+1)
	f.Add(huge[:])                         // oversized length prefix
	f.Add([]byte{9, 0, 0, 0, MsgOK, 1, 2}) // claims 9 payload bytes, has 2

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		typ, payload, err := readFrame(r)
		if err != nil {
			// Rejected input: the error must have surfaced without a frame.
			if payload != nil {
				t.Fatalf("readFrame returned payload alongside error %v", err)
			}
			return
		}
		// Exact-consumption check: success means precisely one header plus
		// one payload was taken from the stream.
		consumed := len(data) - r.Len()
		if want := 5 + len(payload); consumed != want {
			t.Fatalf("readFrame consumed %d bytes, want %d", consumed, want)
		}
		if len(payload) > MaxFrame {
			t.Fatalf("readFrame accepted %d-byte payload beyond MaxFrame", len(payload))
		}

		// Round trip: re-encoding the accepted frame reproduces the input
		// prefix bit-for-bit.
		var out bytes.Buffer
		if err := writeFrame(&out, typ, payload); err != nil {
			t.Fatalf("writeFrame rejected a frame readFrame accepted: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("round trip mismatch:\n read %x\nwrote %x", data[:consumed], out.Bytes())
		}

		// Decision payloads must decode or error — never panic, never claim
		// dims beyond the payload.
		if typ == MsgDecision {
			d, err := decodeDecision(state.NewDecoder(payload))
			if err == nil && len(d.Dims) > len(payload)/8 {
				t.Fatalf("decoded %d dims from %d payload bytes", len(d.Dims), len(payload))
			}
		}

		// Batch ingest payloads must decode or error — never panic — and
		// anything accepted must re-encode to the payload byte for byte:
		// decode enforces exact consumption, so the batch codec is its own
		// inverse on the valid subset.
		if typ == MsgIngestBatch {
			var ib ingestBatch
			if err := ib.decode(payload); err == nil {
				re := state.NewEncoder()
				appendIngestBatch(re, ib.handles, ib.ests, ib.us)
				if !bytes.Equal(re.Bytes(), payload) {
					t.Fatalf("batch re-encode mismatch:\n  in %x\n out %x", payload, re.Bytes())
				}
			}
		}

		// Decision batch payloads must decode or error for whatever count
		// they claim — never panic, never decode more results than fit.
		if typ == MsgDecisionBatch && len(payload) >= 4 {
			n := binary.LittleEndian.Uint32(payload[:4])
			// Each result is at least 1 status byte; larger claims must be
			// rejected by the decoder itself when results run out of bytes.
			if int64(n) <= int64(len(payload)) {
				out := make([]IngestResult, n)
				_ = decodeDecisionBatch(state.NewDecoder(payload), out)
			}
		}

		// A second frame may follow; it must obey the same contract.
		rest := len(data) - consumed
		if _, p2, err := readFrame(r); err == nil {
			if consumed2 := rest - r.Len(); consumed2 != 5+len(p2) {
				t.Fatalf("second readFrame consumed %d bytes, want %d", consumed2, 5+len(p2))
			}
		} else if err != io.EOF && err != io.ErrUnexpectedEOF && rest >= 5 {
			// Non-EOF failures with a full header present must be the
			// MaxFrame guard, which precedes allocation.
			n := binary.LittleEndian.Uint32(data[consumed : consumed+4])
			if n <= MaxFrame {
				t.Fatalf("second readFrame failed on in-bound frame: %v", err)
			}
		}
	})
}
