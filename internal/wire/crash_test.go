package wire

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/sim"
)

// startAwdserve builds (once) and launches the awdserve binary, returning
// the process and its bound wire address parsed from stdout.
func startAwdserve(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start awdserve: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				addrCh <- rest
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("awdserve did not report a listen address")
		return nil, ""
	}
}

// TestCrashReplaySIGKILL is the process-level proof obligation: a real
// awdserve process is killed with SIGKILL mid-run, restarted from its last
// checkpoint, and the decision stream replayed from the checkpoint step
// must be bit-identical to the stream the original process produced — and,
// past the kill point, to a never-crashed in-process reference.
func TestCrashReplaySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the awdserve binary")
	}
	const (
		ckptStep = 40 // checkpoint taken here
		killStep = 70 // SIGKILL lands here
		steps    = 100
	)
	dir := t.TempDir()
	bin := filepath.Join(dir, "awdserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/awdserve")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/awdserve: %v\n%s", err, out)
	}

	type streamDef struct {
		tenant, stream, model, strategy string
	}
	defs := []streamDef{
		{"acme", "pitch", "aircraft-pitch", "adaptive"},
		{"acme", "quad", "quadrotor", "adaptive"},
		{"globex", "car", "testbed-car", "fixed"},
	}
	// Samples are regenerated deterministically from step 0 on both sides
	// of the crash — the generators are stateful, so replay means replay.
	trajs := make([][][]float64, len(defs))
	inputs := make([][]float64, len(defs))
	for i, d := range defs {
		trajs[i], inputs[i] = wireTrajectory(models.ByName(d.model), 31+uint64(i), steps)
	}

	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	proc, addr := startAwdserve(t, bin, "-addr", "127.0.0.1:0", "-checkpoint-dir", ckptDir)
	defer func() { _ = proc.Process.Kill() }()

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	handles := make([]uint64, len(defs))
	for i, d := range defs {
		if handles[i], err = c.Open(d.tenant, d.stream, d.model, d.strategy, 0); err != nil {
			t.Fatalf("Open(%s/%s): %v", d.tenant, d.stream, err)
		}
	}
	// Drive to the kill point, checkpointing on the way; everything the
	// doomed process said after the checkpoint is the reference the
	// restored process must reproduce.
	got := make([][]core.Decision, len(defs))
	for step := 0; step < killStep; step++ {
		if step == ckptStep {
			if _, err := c.Checkpoint("crash.awds"); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
		for i := range defs {
			d, err := c.Ingest(handles[i], trajs[i][step], inputs[i])
			if err != nil {
				t.Fatalf("Ingest(%s, %d): %v", defs[i].stream, step, err)
			}
			got[i] = append(got[i], d)
		}
	}
	c.Close()
	if err := proc.Process.Kill(); err != nil { // SIGKILL: no drain, no final checkpoint
		t.Fatalf("kill: %v", err)
	}
	_ = proc.Wait()

	// Never-crashed reference for the tail past the kill point.
	want := make([][]core.Decision, len(defs))
	for i, d := range defs {
		strat, err := parseStrategy(d.strategy)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := sim.Detector(sim.Config{Model: models.ByName(d.model), Strategy: strat})
		if err != nil {
			t.Fatalf("Detector: %v", err)
		}
		want[i] = make([]core.Decision, steps)
		for step := 0; step < steps; step++ {
			if want[i][step], err = serial.Step(trajs[i][step], inputs[i]); err != nil {
				t.Fatalf("serial %s step %d: %v", d.stream, step, err)
			}
		}
		// Sanity: the doomed process agreed with the reference while alive.
		for step := 0; step < killStep; step++ {
			if !wireDecisionsEqual(got[i][step], want[i][step]) {
				t.Fatalf("pre-kill %s step %d: %+v != %+v", d.stream, step, got[i][step], want[i][step])
			}
		}
	}

	proc2, addr2 := startAwdserve(t, bin,
		"-addr", "127.0.0.1:0", "-checkpoint-dir", ckptDir, "-restore-from", "crash.awds")
	defer func() { _ = proc2.Process.Kill() }()
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatalf("Dial restored: %v", err)
	}
	for i, d := range defs {
		h, err := c2.Open(d.tenant, d.stream, d.model, d.strategy, 0)
		if err != nil {
			t.Fatalf("re-Open(%s/%s): %v", d.tenant, d.stream, err)
		}
		for step := ckptStep; step < steps; step++ {
			dec, err := c2.Ingest(h, trajs[i][step], inputs[i])
			if err != nil {
				t.Fatalf("restored Ingest(%s, %d): %v", d.stream, step, err)
			}
			if !wireDecisionsEqual(dec, want[i][step]) {
				t.Fatalf("restored %s step %d: %+v != never-crashed %+v", d.stream, step, dec, want[i][step])
			}
		}
	}
	c2.Close()

	// Graceful shutdown path: SIGTERM drains and writes a final checkpoint.
	if err := proc2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- proc2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("awdserve exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("awdserve did not exit on SIGTERM")
	}
	final := filepath.Join(ckptDir, DefaultCheckpointName)
	if st, err := os.Stat(final); err != nil || st.Size() == 0 {
		t.Fatalf("final checkpoint %s missing or empty (err=%v)", final, err)
	}
}

// TestCrashReplayPipelinedSIGKILL kills a real awdserve process while a
// pipelined client has a full in-flight window against it — the hardest
// recovery case, since samples die in every stage: unflushed in the
// client, queued in the server's writer, decided but unacknowledged. The
// proof obligation: every decision the pipeline delivered before the kill
// is a clean prefix of the never-crashed reference stream, and a process
// restored from the mid-run checkpoint replays the whole tail — including
// every sample that was mid-pipeline at the kill — bit-identically. The
// server runs with explicit -flush-interval/-max-inflight, covering the
// new flags end to end.
func TestCrashReplayPipelinedSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the awdserve binary")
	}
	const (
		ckptStep = 30 // checkpoint taken here
		killStep = 65 // pipelined submissions stop here; SIGKILL mid-window
		steps    = 90
	)
	dir := t.TempDir()
	bin := filepath.Join(dir, "awdserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/awdserve")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/awdserve: %v\n%s", err, out)
	}

	type streamDef struct {
		tenant, stream, model, strategy string
	}
	defs := []streamDef{
		{"acme", "pitch", "aircraft-pitch", "adaptive"},
		{"globex", "rlc", "series-rlc", "adaptive"},
	}
	trajs := make([][][]float64, len(defs))
	inputs := make([][]float64, len(defs))
	want := make([][]core.Decision, len(defs))
	for i, d := range defs {
		trajs[i], inputs[i] = wireTrajectory(models.ByName(d.model), 57+uint64(i), steps)
		serial, err := sim.Detector(sim.Config{Model: models.ByName(d.model), Strategy: sim.Adaptive})
		if err != nil {
			t.Fatalf("Detector: %v", err)
		}
		want[i] = make([]core.Decision, steps)
		for step := 0; step < steps; step++ {
			if want[i][step], err = serial.Step(trajs[i][step], inputs[i]); err != nil {
				t.Fatalf("serial %s step %d: %v", d.stream, step, err)
			}
		}
	}

	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	proc, addr := startAwdserve(t, bin,
		"-addr", "127.0.0.1:0", "-checkpoint-dir", ckptDir,
		"-flush-interval", "100us", "-max-inflight", "64")
	defer func() { _ = proc.Process.Kill() }()

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	handles := make([]uint64, len(defs))
	for i, d := range defs {
		if handles[i], err = c.Open(d.tenant, d.stream, d.model, d.strategy, 0); err != nil {
			t.Fatalf("Open(%s/%s): %v", d.tenant, d.stream, err)
		}
	}
	// Synchronous prefix up to the checkpoint.
	for step := 0; step < ckptStep; step++ {
		for i := range defs {
			d, err := c.Ingest(handles[i], trajs[i][step], inputs[i])
			if err != nil {
				t.Fatalf("Ingest(%s, %d): %v", defs[i].stream, step, err)
			}
			if !wireDecisionsEqual(d, want[i][step]) {
				t.Fatalf("pre-checkpoint %s step %d: %+v != %+v", defs[i].stream, step, d, want[i][step])
			}
		}
	}
	if _, err := c.Checkpoint("crash.awds"); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	// Pipelined phase: stream without waiting, then SIGKILL with the
	// window still in flight (no flush, no close handshake).
	type rec struct{ caseIdx, step int }
	var subs []rec
	var results []IngestResult
	p, err := c.Pipeline(32, func(_ uint64, d core.Decision, err error) {
		results = append(results, IngestResult{Decision: d, Err: err})
	})
	if err != nil {
		t.Fatalf("Pipeline: %v", err)
	}
submitting:
	for step := ckptStep; step < killStep; step++ {
		for i := range defs {
			if err := p.Ingest(handles[i], trajs[i][step], inputs[i]); err != nil {
				break submitting // server already gone; fine, window was full
			}
			subs = append(subs, rec{i, step})
		}
	}
	if err := proc.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_ = proc.Wait()
	_ = p.Close() // transport error expected: the window died with the server
	c.Close()

	// Ordered delivery means the successes form a clean prefix of the
	// submission order, each bit-identical to the reference.
	delivered := 0
	for k, res := range results {
		if res.Err != nil {
			break
		}
		s := subs[k]
		if !wireDecisionsEqual(res.Decision, want[s.caseIdx][s.step]) {
			t.Fatalf("pipelined delivery %d (%s step %d): %+v != %+v",
				k, defs[s.caseIdx].stream, s.step, res.Decision, want[s.caseIdx][s.step])
		}
		delivered++
	}
	t.Logf("pipeline delivered %d/%d decisions before SIGKILL", delivered, len(subs))

	// Restore and replay the whole tail from the checkpoint — the replay
	// covers every sample that was mid-pipeline when the process died.
	proc2, addr2 := startAwdserve(t, bin,
		"-addr", "127.0.0.1:0", "-checkpoint-dir", ckptDir, "-restore-from", "crash.awds",
		"-flush-interval", "100us", "-max-inflight", "64")
	defer func() { _ = proc2.Process.Kill() }()
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatalf("Dial restored: %v", err)
	}
	defer c2.Close()
	for i, d := range defs {
		h, err := c2.Open(d.tenant, d.stream, d.model, d.strategy, 0)
		if err != nil {
			t.Fatalf("re-Open(%s/%s): %v", d.tenant, d.stream, err)
		}
		// Replay pipelined too: recovery must not depend on dropping back
		// to the synchronous path.
		step := ckptStep
		p2, err := c2.Pipeline(16, func(_ uint64, dec core.Decision, err error) {
			if err != nil {
				t.Errorf("restored %s: %v", d.stream, err)
				return
			}
			if !wireDecisionsEqual(dec, want[i][step]) {
				t.Errorf("restored %s step %d: %+v != never-crashed %+v", d.stream, step, dec, want[i][step])
			}
			step++
		})
		if err != nil {
			t.Fatalf("Pipeline restored: %v", err)
		}
		for s := ckptStep; s < steps; s++ {
			if err := p2.Ingest(h, trajs[i][s], inputs[i]); err != nil {
				t.Fatalf("restored Ingest(%s, %d): %v", d.stream, s, err)
			}
		}
		if err := p2.Close(); err != nil {
			t.Fatalf("restored Close(%s): %v", d.stream, err)
		}
		if step != steps {
			t.Fatalf("restored %s delivered through step %d, want %d", d.stream, step, steps)
		}
	}
}
