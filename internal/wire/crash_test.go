package wire

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/sim"
)

// startAwdserve builds (once) and launches the awdserve binary, returning
// the process and its bound wire address parsed from stdout.
func startAwdserve(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start awdserve: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				addrCh <- rest
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("awdserve did not report a listen address")
		return nil, ""
	}
}

// TestCrashReplaySIGKILL is the process-level proof obligation: a real
// awdserve process is killed with SIGKILL mid-run, restarted from its last
// checkpoint, and the decision stream replayed from the checkpoint step
// must be bit-identical to the stream the original process produced — and,
// past the kill point, to a never-crashed in-process reference.
func TestCrashReplaySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the awdserve binary")
	}
	const (
		ckptStep = 40 // checkpoint taken here
		killStep = 70 // SIGKILL lands here
		steps    = 100
	)
	dir := t.TempDir()
	bin := filepath.Join(dir, "awdserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/awdserve")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/awdserve: %v\n%s", err, out)
	}

	type streamDef struct {
		tenant, stream, model, strategy string
	}
	defs := []streamDef{
		{"acme", "pitch", "aircraft-pitch", "adaptive"},
		{"acme", "quad", "quadrotor", "adaptive"},
		{"globex", "car", "testbed-car", "fixed"},
	}
	// Samples are regenerated deterministically from step 0 on both sides
	// of the crash — the generators are stateful, so replay means replay.
	trajs := make([][][]float64, len(defs))
	inputs := make([][]float64, len(defs))
	for i, d := range defs {
		trajs[i], inputs[i] = wireTrajectory(models.ByName(d.model), 31+uint64(i), steps)
	}

	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	proc, addr := startAwdserve(t, bin, "-addr", "127.0.0.1:0", "-checkpoint-dir", ckptDir)
	defer func() { _ = proc.Process.Kill() }()

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	handles := make([]uint64, len(defs))
	for i, d := range defs {
		if handles[i], err = c.Open(d.tenant, d.stream, d.model, d.strategy, 0); err != nil {
			t.Fatalf("Open(%s/%s): %v", d.tenant, d.stream, err)
		}
	}
	// Drive to the kill point, checkpointing on the way; everything the
	// doomed process said after the checkpoint is the reference the
	// restored process must reproduce.
	got := make([][]core.Decision, len(defs))
	for step := 0; step < killStep; step++ {
		if step == ckptStep {
			if _, err := c.Checkpoint("crash.awds"); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
		for i := range defs {
			d, err := c.Ingest(handles[i], trajs[i][step], inputs[i])
			if err != nil {
				t.Fatalf("Ingest(%s, %d): %v", defs[i].stream, step, err)
			}
			got[i] = append(got[i], d)
		}
	}
	c.Close()
	if err := proc.Process.Kill(); err != nil { // SIGKILL: no drain, no final checkpoint
		t.Fatalf("kill: %v", err)
	}
	_ = proc.Wait()

	// Never-crashed reference for the tail past the kill point.
	want := make([][]core.Decision, len(defs))
	for i, d := range defs {
		strat, err := parseStrategy(d.strategy)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := sim.Detector(sim.Config{Model: models.ByName(d.model), Strategy: strat})
		if err != nil {
			t.Fatalf("Detector: %v", err)
		}
		want[i] = make([]core.Decision, steps)
		for step := 0; step < steps; step++ {
			if want[i][step], err = serial.Step(trajs[i][step], inputs[i]); err != nil {
				t.Fatalf("serial %s step %d: %v", d.stream, step, err)
			}
		}
		// Sanity: the doomed process agreed with the reference while alive.
		for step := 0; step < killStep; step++ {
			if !wireDecisionsEqual(got[i][step], want[i][step]) {
				t.Fatalf("pre-kill %s step %d: %+v != %+v", d.stream, step, got[i][step], want[i][step])
			}
		}
	}

	proc2, addr2 := startAwdserve(t, bin,
		"-addr", "127.0.0.1:0", "-checkpoint-dir", ckptDir, "-restore-from", "crash.awds")
	defer func() { _ = proc2.Process.Kill() }()
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatalf("Dial restored: %v", err)
	}
	for i, d := range defs {
		h, err := c2.Open(d.tenant, d.stream, d.model, d.strategy, 0)
		if err != nil {
			t.Fatalf("re-Open(%s/%s): %v", d.tenant, d.stream, err)
		}
		for step := ckptStep; step < steps; step++ {
			dec, err := c2.Ingest(h, trajs[i][step], inputs[i])
			if err != nil {
				t.Fatalf("restored Ingest(%s, %d): %v", d.stream, step, err)
			}
			if !wireDecisionsEqual(dec, want[i][step]) {
				t.Fatalf("restored %s step %d: %+v != never-crashed %+v", d.stream, step, dec, want[i][step])
			}
		}
	}
	c2.Close()

	// Graceful shutdown path: SIGTERM drains and writes a final checkpoint.
	if err := proc2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- proc2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("awdserve exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("awdserve did not exit on SIGTERM")
	}
	final := filepath.Join(ckptDir, DefaultCheckpointName)
	if st, err := os.Stat(final); err != nil || st.Size() == 0 {
		t.Fatalf("final checkpoint %s missing or empty (err=%v)", final, err)
	}
}
