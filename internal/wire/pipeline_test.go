package wire

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/sim"
)

// TestWirePipelinedMatchesSerial is the pipelining differential: all six
// plants under all three attacks, samples streamed through the async
// in-flight window (deliberately smaller than one step's fan-out, so the
// window wraps constantly), with every decision delivered in submission
// order and bit-identical to a standalone detector. A tiny server flush
// interval keeps the coalescing timer path exercised too.
func TestWirePipelinedMatchesSerial(t *testing.T) {
	const steps = 40
	_, addr := startServer(t, Config{
		Workers:       2,
		MaxInflight:   32,
		FlushInterval: 50 * time.Microsecond,
	})
	c := dial(t, addr)
	cases := openBatchCases(t, c, steps)

	type delivered struct {
		handle uint64
		d      core.Decision
		err    error
	}
	var got []delivered
	p, err := c.Pipeline(11, func(handle uint64, d core.Decision, err error) {
		got = append(got, delivered{handle, d, err})
	})
	if err != nil {
		t.Fatalf("Pipeline: %v", err)
	}
	type sub struct{ caseIdx, step int }
	var subs []sub
	for step := 0; step < steps; step++ {
		for i, bc := range cases {
			if err := p.Ingest(bc.handle, bc.ests[step], bc.u); err != nil {
				t.Fatalf("pipelined Ingest(step %d case %d): %v", step, i, err)
			}
			subs = append(subs, sub{i, step})
		}
		if step == steps/2 {
			// A mid-stream Flush must drain the window without disturbing
			// ordering.
			if err := p.Flush(); err != nil {
				t.Fatalf("mid-stream Flush: %v", err)
			}
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if len(got) != len(subs) {
		t.Fatalf("delivered %d decisions, submitted %d", len(got), len(subs))
	}
	for k, s := range subs {
		bc := cases[s.caseIdx]
		if got[k].handle != bc.handle {
			t.Fatalf("delivery %d: handle %d, want %d (ordering broken)", k, got[k].handle, bc.handle)
		}
		if got[k].err != nil {
			t.Fatalf("delivery %d: %v", k, got[k].err)
		}
		want, err := bc.det.Step(bc.ests[s.step], bc.u)
		if err != nil {
			t.Fatalf("serial step: %v", err)
		}
		if !wireDecisionsEqual(got[k].d, want) {
			t.Fatalf("case %d step %d: pipelined %+v != serial %+v", s.caseIdx, s.step, got[k].d, want)
		}
	}

	// The connection returns to synchronous use after Close.
	if _, err := c.Ingest(cases[0].handle, cases[0].ests[0], cases[0].u); err != nil {
		t.Fatalf("synchronous ingest after pipeline: %v", err)
	}
}

// TestWirePipelinedPerSampleErrors pins that a MsgError response (here an
// unknown handle) fails only its own sample: the pipeline keeps running
// and later samples decide normally.
func TestWirePipelinedPerSampleErrors(t *testing.T) {
	_, addr := startServer(t, Config{Workers: 1})
	c := dial(t, addr)
	h, err := c.Open("acme", "s", "dc-motor", "adaptive", 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	m := models.ByName("dc-motor")
	ests, u := wireTrajectory(m, 8, 4)
	serial, err := sim.Detector(sim.Config{Model: m, Strategy: sim.Adaptive})
	if err != nil {
		t.Fatalf("Detector: %v", err)
	}

	var errs []error
	var decs []core.Decision
	p, err := c.Pipeline(4, func(_ uint64, d core.Decision, err error) {
		errs = append(errs, err)
		decs = append(decs, d)
	})
	if err != nil {
		t.Fatalf("Pipeline: %v", err)
	}
	submit := []uint64{h, 999, h, h, 999, h}
	step := 0
	for _, sh := range submit {
		if sh == 999 {
			if err := p.Ingest(999, ests[0], u); err != nil {
				t.Fatalf("Ingest(bad): %v", err)
			}
			continue
		}
		if err := p.Ingest(h, ests[step], u); err != nil {
			t.Fatalf("Ingest(%d): %v", step, err)
		}
		step++
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(errs) != len(submit) {
		t.Fatalf("delivered %d, want %d", len(errs), len(submit))
	}
	step = 0
	for k, sh := range submit {
		if sh == 999 {
			if errs[k] == nil {
				t.Fatalf("delivery %d: unknown handle decided", k)
			}
			continue
		}
		if errs[k] != nil {
			t.Fatalf("delivery %d: %v", k, errs[k])
		}
		want, err := serial.Step(ests[step], u)
		if err != nil {
			t.Fatalf("serial: %v", err)
		}
		if !wireDecisionsEqual(decs[k], want) {
			t.Fatalf("delivery %d: %+v != %+v", k, decs[k], want)
		}
		step++
	}
}
