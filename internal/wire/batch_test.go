package wire

import (
	"bytes"
	"encoding/json"
	"net/http"
	"slices"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/sim"
)

// wireAttacks builds the three evaluation attacks (Sec. 6.1.1) scaled to a
// model: bias by 3τ, a 5-step delay, and a replay of an early recording.
func wireAttacks(m *models.Model) []attack.Attack {
	sched := attack.Schedule{Start: 20}
	offset := m.Tau.Clone()
	for i := range offset {
		offset[i] *= 3
	}
	return []attack.Attack{
		attack.NewBias(sched, offset),
		attack.NewDelay(sched, 5),
		attack.NewReplay(sched, 2, 10),
	}
}

// attackedTrajectory corrupts a clean estimate stream through a stateful
// attack, replaying it from step 0 as the attack buffers require.
func attackedTrajectory(a attack.Attack, clean [][]float64) [][]float64 {
	a.Reset()
	out := make([][]float64, len(clean))
	for t, e := range clean {
		out[t] = a.Apply(t, mat.Vec(e).Clone())
	}
	return out
}

// batchCase is one stream in the batched differential: a plant under one
// attack, its wire handle, its attacked estimate stream, and the
// standalone detector producing the ground-truth decision sequence.
type batchCase struct {
	handle uint64
	ests   [][]float64
	u      []float64
	det    *core.System
}

// openBatchCases opens one stream per (plant × attack) pair — all six
// bundled plants under bias, delay, and replay — and returns each with its
// attacked trajectory and a twin standalone detector.
func openBatchCases(t *testing.T, c *Client, steps int) []*batchCase {
	t.Helper()
	var cases []*batchCase
	plants := append(models.All(), models.TestbedCar())
	for _, m := range plants {
		clean, u := wireTrajectory(m, 31, steps)
		for _, a := range wireAttacks(m) {
			h, err := c.Open("diff", m.Name+"-"+a.Name(), m.Name, "adaptive", 0)
			if err != nil {
				t.Fatalf("Open(%s/%s): %v", m.Name, a.Name(), err)
			}
			det, err := sim.Detector(sim.Config{Model: m, Strategy: sim.Adaptive})
			if err != nil {
				t.Fatalf("Detector(%s): %v", m.Name, err)
			}
			cases = append(cases, &batchCase{
				handle: h,
				ests:   attackedTrajectory(a, clean),
				u:      u,
				det:    det,
			})
		}
	}
	return cases
}

// TestWireBatchMatchesSerial is the tentpole differential: all six plants
// under all three attacks, every step's samples carried in one
// MsgIngestBatch frame, with each stream's decisions pinned bit-identical
// to a standalone detector stepped over the same attacked trajectory.
func TestWireBatchMatchesSerial(t *testing.T) {
	const steps = 50
	_, addr := startServer(t, Config{Workers: 2, ShardSize: 4, MaxBatch: 4})
	c := dial(t, addr)
	cases := openBatchCases(t, c, steps)

	n := len(cases)
	handles := make([]uint64, n)
	ests := make([][]float64, n)
	inputs := make([][]float64, n)
	out := make([]IngestResult, n)
	for step := 0; step < steps; step++ {
		for i, bc := range cases {
			handles[i] = bc.handle
			ests[i] = bc.ests[step]
			inputs[i] = bc.u
		}
		if err := c.IngestBatch(handles, ests, inputs, out); err != nil {
			t.Fatalf("IngestBatch(step %d): %v", step, err)
		}
		for i, bc := range cases {
			if out[i].Err != nil {
				t.Fatalf("step %d case %d: %v", step, i, out[i].Err)
			}
			want, err := bc.det.Step(bc.ests[step], bc.u)
			if err != nil {
				t.Fatalf("step %d case %d serial: %v", step, i, err)
			}
			if !wireDecisionsEqual(out[i].Decision, want) {
				t.Fatalf("step %d case %d: batch %+v != serial %+v", step, i, out[i].Decision, want)
			}
		}
	}
}

// TestWireBatchDuplicateHandles pins wire-level ordering for a batch
// carrying several samples of the same stream: decisions come back in
// item order, matching the serial frame-per-sample path exactly.
func TestWireBatchDuplicateHandles(t *testing.T) {
	const steps = 9
	_, addr := startServer(t, Config{Workers: 2})
	c := dial(t, addr)
	h, err := c.Open("acme", "dup", "aircraft-pitch", "adaptive", 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	m := models.ByName("aircraft-pitch")
	ests, u := wireTrajectory(m, 13, steps)
	serial, err := sim.Detector(sim.Config{Model: m, Strategy: sim.Adaptive})
	if err != nil {
		t.Fatalf("Detector: %v", err)
	}

	handles := make([]uint64, steps)
	inputs := make([][]float64, steps)
	for i := range handles {
		handles[i] = h
		inputs[i] = u
	}
	out := make([]IngestResult, steps)
	if err := c.IngestBatch(handles, ests, inputs, out); err != nil {
		t.Fatalf("IngestBatch: %v", err)
	}
	for i := 0; i < steps; i++ {
		if out[i].Err != nil {
			t.Fatalf("sample %d: %v", i, out[i].Err)
		}
		want, err := serial.Step(ests[i], u)
		if err != nil {
			t.Fatalf("serial %d: %v", i, err)
		}
		if !wireDecisionsEqual(out[i].Decision, want) {
			t.Fatalf("sample %d: %+v != %+v", i, out[i].Decision, want)
		}
	}
}

// TestWireBatchPerItemErrors pins the batch failure contract on the wire:
// an unknown handle fails its own item, the rest of the batch decides, and
// the connection stays healthy.
func TestWireBatchPerItemErrors(t *testing.T) {
	_, addr := startServer(t, Config{Workers: 1})
	c := dial(t, addr)
	h, err := c.Open("acme", "s", "series-rlc", "adaptive", 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	m := models.ByName("series-rlc")
	ests, u := wireTrajectory(m, 3, 2)

	handles := []uint64{h, 999, h}
	batchEsts := [][]float64{ests[0], ests[0], ests[1]}
	inputs := [][]float64{u, u, u}
	out := make([]IngestResult, 3)
	if err := c.IngestBatch(handles, batchEsts, inputs, out); err != nil {
		t.Fatalf("IngestBatch: %v", err)
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("healthy items failed: %v / %v", out[0].Err, out[2].Err)
	}
	if out[0].Decision.Step != 0 || out[2].Decision.Step != 1 {
		t.Fatalf("healthy steps = %d, %d; want 0, 1", out[0].Decision.Step, out[2].Decision.Step)
	}
	if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "unknown stream") {
		t.Fatalf("unknown handle error = %v", out[1].Err)
	}
	// Mismatched slice lengths are a client-side error before any frame.
	if err := c.IngestBatch(handles, batchEsts[:2], inputs, out); err == nil {
		t.Fatalf("length mismatch accepted")
	}
	// The connection still serves.
	if _, err := c.Ingest(h, ests[0], u); err != nil {
		t.Fatalf("ingest after batch errors: %v", err)
	}
}

// TestHTTPBatchMatchesBinary is the scripting-path differential: the same
// samples through POST /v1/ingest-batch and through the binary batch frame
// against twin streams must yield identical decision sequences.
func TestHTTPBatchMatchesBinary(t *testing.T) {
	const steps = 20
	srv, addr := startServer(t, Config{Workers: 2})
	httpAddr, err := srv.StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartHTTP: %v", err)
	}
	c := dial(t, addr)
	m := models.ByName("quadrotor")
	ests, u := wireTrajectory(m, 9, steps)

	bh, err := c.Open("acme", "bin", "quadrotor", "adaptive", 0)
	if err != nil {
		t.Fatalf("Open(bin): %v", err)
	}
	var opened struct {
		Handle uint64 `json:"handle"`
	}
	postJSON(t, httpAddr, "/v1/open",
		openRequest{Tenant: "acme", Stream: "http", Model: "quadrotor", Strategy: "adaptive"}, &opened)

	const per = 5 // samples per batch: 4 batches of 5 steps
	for start := 0; start < steps; start += per {
		handles := make([]uint64, per)
		batchEsts := make([][]float64, per)
		inputs := make([][]float64, per)
		items := make([]ingestRequest, per)
		for i := 0; i < per; i++ {
			handles[i] = bh
			batchEsts[i] = ests[start+i]
			inputs[i] = u
			items[i] = ingestRequest{Handle: opened.Handle, Estimate: ests[start+i], Input: u}
		}
		out := make([]IngestResult, per)
		if err := c.IngestBatch(handles, batchEsts, inputs, out); err != nil {
			t.Fatalf("IngestBatch: %v", err)
		}
		var resp struct {
			Items []ingestBatchItemJSON `json:"items"`
		}
		postJSON(t, httpAddr, "/v1/ingest-batch", ingestBatchRequest{Items: items}, &resp)
		if len(resp.Items) != per {
			t.Fatalf("HTTP batch returned %d items, want %d", len(resp.Items), per)
		}
		for i := 0; i < per; i++ {
			if out[i].Err != nil {
				t.Fatalf("binary item %d: %v", i, out[i].Err)
			}
			hj := resp.Items[i]
			if hj.Error != "" || hj.Decision == nil {
				t.Fatalf("HTTP item %d: decision=%v error=%q", i, hj.Decision, hj.Error)
			}
			bj := toDecisionJSON(out[i].Decision)
			if hj.Decision.Step != bj.Step || hj.Decision.Window != bj.Window ||
				hj.Decision.Deadline != bj.Deadline || hj.Decision.Alarm != bj.Alarm ||
				hj.Decision.Complementary != bj.Complementary ||
				hj.Decision.ComplementaryStep != bj.ComplementaryStep ||
				!slices.Equal(hj.Decision.Dims, bj.Dims) {
				t.Fatalf("step %d: HTTP %+v != binary %+v", start+i, *hj.Decision, bj)
			}
		}
	}
	// Per-item errors surface as JSON error strings, not whole-batch 4xx.
	var resp struct {
		Items []ingestBatchItemJSON `json:"items"`
	}
	postJSON(t, httpAddr, "/v1/ingest-batch",
		ingestBatchRequest{Items: []ingestRequest{{Handle: 999, Estimate: ests[0], Input: u}}}, &resp)
	if len(resp.Items) != 1 || resp.Items[0].Error == "" {
		t.Fatalf("unknown-handle HTTP batch item = %+v", resp.Items)
	}
}

// postJSON posts body to the HTTP fallback and decodes the 200 response.
func postJSON(t *testing.T, addr, path string, body, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: %s (%s)", path, resp.Status, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decode: %v", path, err)
	}
}
