package wire

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/state"
)

// Pipeline is the client's asynchronous ingest mode: Ingest stages a
// sample and returns without waiting for its decision, keeping up to
// window samples in flight on the connection; a reader goroutine delivers
// every decision strictly in submission order through the deliver
// callback. The server handles frames in arrival order and answers in
// that same order (see the package doc), so ordered delivery needs no
// sequence numbers — the k-th response on the wire is the k-th staged
// sample's decision.
//
// While a Pipeline is open it owns the connection: the synchronous Client
// methods must not be called until Close returns. A Pipeline is not safe
// for concurrent use by multiple goroutines (the deliver callback runs on
// the reader goroutine, concurrently with Ingest calls — it must not call
// back into the Pipeline or Client).
type Pipeline struct {
	c       *Client
	deliver func(handle uint64, d core.Decision, err error)

	sem     chan struct{} // one token per in-flight sample
	pending chan uint64   // FIFO of in-flight sample handles
	done    chan struct{} // closed when the reader goroutine exits

	mu  sync.Mutex
	err error // first transport failure; sticky
}

// Pipeline switches the connection into pipelined ingest mode with the
// given in-flight window (<= 0 uses DefaultMaxInflight; windows beyond
// the server's -max-inflight just move the blocking to the transport).
// deliver receives every sample's decision in submission order, on the
// reader goroutine. Requires a version 2 server.
func (c *Client) Pipeline(window int, deliver func(handle uint64, d core.Decision, err error)) (*Pipeline, error) {
	if c.serverVersion < 2 {
		return nil, fmt.Errorf("wire: server speaks protocol %d, pipelining needs 2", c.serverVersion)
	}
	if window <= 0 {
		window = DefaultMaxInflight
	}
	p := &Pipeline{
		c:       c,
		deliver: deliver,
		sem:     make(chan struct{}, window),
		pending: make(chan uint64, window),
		done:    make(chan struct{}),
	}
	go p.readLoop()
	return p, nil
}

// Ingest stages one sample. It blocks only when the in-flight window is
// full, in which case it first flushes the staged frames (the decisions
// being waited on may still sit in the client's write buffer — blocking
// without flushing would deadlock) and then waits for a window slot.
func (p *Pipeline) Ingest(handle uint64, estimate, appliedU []float64) error {
	if err := p.Err(); err != nil {
		return err
	}
	select {
	case p.sem <- struct{}{}:
	default:
		if err := p.c.bw.Flush(); err != nil {
			p.fail(err)
			return err
		}
		p.sem <- struct{}{}
	}
	c := p.c
	c.reset()
	c.enc.U64(handle)
	c.enc.F64s(estimate)
	c.enc.F64s(appliedU)
	if err := writeFrame(c.bw, MsgIngest, c.enc.Bytes()); err != nil {
		p.fail(err)
		<-p.sem // the sample never became pending; return its token
		return err
	}
	p.pending <- handle // never blocks: capacity matches the window
	return nil
}

// Flush pushes every staged frame to the server and waits until every
// in-flight sample's decision has been delivered. It returns the sticky
// transport error, if any.
func (p *Pipeline) Flush() error {
	if err := p.c.bw.Flush(); err != nil {
		p.fail(err)
	}
	// Holding every window token means no sample is in flight.
	for i := 0; i < cap(p.sem); i++ {
		p.sem <- struct{}{}
	}
	for i := 0; i < cap(p.sem); i++ {
		<-p.sem
	}
	return p.Err()
}

// Close flushes, waits out the in-flight window, and stops the reader
// goroutine, returning the connection to synchronous use.
func (p *Pipeline) Close() error {
	err := p.Flush()
	close(p.pending)
	<-p.done
	return err
}

// Err reports the sticky transport error, if any.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// fail records the first transport error and closes the connection so the
// reader goroutine (possibly blocked mid-read) unblocks; every in-flight
// and subsequent sample is then delivered with the error.
func (p *Pipeline) fail(err error) {
	p.mu.Lock()
	first := p.err == nil
	if first {
		p.err = err
	}
	p.mu.Unlock()
	if first {
		p.c.conn.Close()
	}
}

// readLoop delivers one response per pending sample, in order. Transport
// failures are sticky: the remaining pending samples drain with the error
// so no Ingest or Flush is left waiting on a window token. A MsgError
// response is a per-sample failure (the framing is intact), so it does
// not poison the connection.
func (p *Pipeline) readLoop() {
	defer close(p.done)
	var rbuf []byte
	var dec state.Decoder
	for h := range p.pending {
		var res IngestResult
		if err := p.Err(); err != nil {
			res.Err = err
		} else {
			rtyp, payload, err := readFrameInto(p.c.br, &rbuf)
			switch {
			case err != nil:
				p.fail(err)
				res.Err = err
			case rtyp == MsgError:
				dec.Reset(payload)
				msg := dec.String()
				if dec.Err() != nil {
					msg = "malformed error response"
				}
				res.Err = errors.New(msg)
			case rtyp != MsgDecision:
				err := fmt.Errorf("wire: pipelined ingest got response type 0x%02x", rtyp)
				p.fail(err)
				res.Err = err
			default:
				dec.Reset(payload)
				res.Decision, res.Err = decodeDecision(&dec)
			}
		}
		p.deliver(h, res.Decision, res.Err)
		<-p.sem
	}
}
