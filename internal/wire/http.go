package wire

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/mat"
)

// httpServer is the HTTP/JSON fallback surface: the same five RPCs as the
// binary protocol, JSON-encoded, for scripting and debugging. Binary
// ingest is roughly an order of magnitude cheaper per sample (see
// BENCH_serve.json); the JSON path exists for accessibility, not
// throughput.
type httpServer struct {
	srv *http.Server
	ln  net.Listener
}

// openRequest is the POST /v1/open body.
type openRequest struct {
	Tenant   string `json:"tenant"`
	Stream   string `json:"stream"`
	Model    string `json:"model"`
	Strategy string `json:"strategy"`
	FixedWin int    `json:"fixed_win,omitempty"`
}

// ingestRequest is the POST /v1/ingest body.
type ingestRequest struct {
	Handle   uint64    `json:"handle"`
	Estimate []float64 `json:"estimate"`
	Input    []float64 `json:"input"`
}

// ingestBatchRequest is the POST /v1/ingest-batch body.
type ingestBatchRequest struct {
	Items []ingestRequest `json:"items"`
}

// ingestBatchItemJSON is one sample's outcome in the batch response;
// exactly one of decision and error is set.
type ingestBatchItemJSON struct {
	Decision *decisionJSON `json:"decision,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// decisionJSON mirrors core.Decision for the JSON surface.
type decisionJSON struct {
	Step              int   `json:"step"`
	Window            int   `json:"window"`
	Deadline          int   `json:"deadline"`
	Alarm             bool  `json:"alarm"`
	Complementary     bool  `json:"complementary"`
	ComplementaryStep int   `json:"complementary_step"`
	Dims              []int `json:"dims,omitempty"`
}

func toDecisionJSON(d core.Decision) decisionJSON {
	return decisionJSON{
		Step:              d.Step,
		Window:            d.Window,
		Deadline:          d.Deadline,
		Alarm:             d.Alarm,
		Complementary:     d.Complementary,
		ComplementaryStep: d.ComplementaryStep,
		Dims:              d.Dims,
	}
}

// StartHTTP serves the JSON fallback on addr and returns the bound
// address. It shares the server's lifecycle: Close shuts it down.
func (s *Server) StartHTTP(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/open", func(w http.ResponseWriter, r *http.Request) {
		var req openRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		h, err := s.Open(req.Tenant, req.Stream, req.Model, req.Strategy, req.FixedWin)
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		httpJSON(w, map[string]uint64{"handle": h})
	})
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		var req ingestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		d, err := s.Ingest(req.Handle, req.Estimate, req.Input)
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		httpJSON(w, toDecisionJSON(d))
	})
	mux.HandleFunc("POST /v1/ingest-batch", func(w http.ResponseWriter, r *http.Request) {
		var req ingestBatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		n := len(req.Items)
		handles := make([]uint64, n)
		items := make([]fleet.BatchItem, n)
		results := make([]fleet.BatchResult, n)
		for i, it := range req.Items {
			handles[i] = it.Handle
			items[i] = fleet.BatchItem{Estimate: mat.Vec(it.Estimate), AppliedU: mat.Vec(it.Input)}
		}
		if err := s.IngestBatch(s.eng.NewBatcher(), handles, items, results); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		out := make([]ingestBatchItemJSON, n)
		for i, res := range results {
			if res.Err != nil {
				out[i].Error = res.Err.Error()
			} else {
				d := toDecisionJSON(res.Decision)
				out[i].Decision = &d
			}
		}
		httpJSON(w, map[string]any{"items": out})
	})
	mux.HandleFunc("POST /v1/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && r.ContentLength > 0 {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		path, n, err := s.Checkpoint(req.Name)
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		httpJSON(w, map[string]any{"path": path, "bytes": n})
	})
	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		s.Drain()
		httpJSON(w, map[string]bool{"draining": true})
	})
	mux.HandleFunc("POST /v1/restore", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && r.ContentLength > 0 {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		n, err := s.Restore(req.Name)
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		httpJSON(w, map[string]int{"streams": n})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		httpJSON(w, s.Stats())
	})

	s.httpSrv = &httpServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		ln:  ln,
	}
	go func() { _ = s.httpSrv.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

func (h *httpServer) close() {
	_ = h.srv.Close()
	_ = h.ln.Close()
}

func httpJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
}
