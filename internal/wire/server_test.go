package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"slices"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/noise"
	"repro/internal/sim"
)

func wireDecisionsEqual(a, b core.Decision) bool {
	return a.Step == b.Step && a.Window == b.Window && a.Deadline == b.Deadline &&
		a.Alarm == b.Alarm && a.Complementary == b.Complementary &&
		a.ComplementaryStep == b.ComplementaryStep && slices.Equal(a.Dims, b.Dims)
}

// wireTrajectory is a deterministic noisy estimate stream inside the
// model's ε-ball with periodic τ-scaled spikes, regenerable from step 0 —
// the replay discipline crash-recovery clients must follow, since the
// generators are stateful.
func wireTrajectory(m *models.Model, seed uint64, steps int) (ests [][]float64, u []float64) {
	gen := noise.NewBall(seed, m.Sys.StateDim(), m.Eps)
	ests = make([][]float64, steps)
	for t := 0; t < steps; t++ {
		e := mat.Vec(gen.Sample(t)).Clone()
		if t%11 == 9 {
			for i := range e {
				e[i] += m.Tau[i] * 2.5
			}
		}
		ests[t] = e
	}
	return ests, make([]float64, m.Sys.InputDim())
}

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv := NewServer(cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return srv, addr
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial(%s): %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestWireIngestMatchesSerial pins the binary protocol end to end: samples
// ingested over TCP come back with decisions bit-identical to a standalone
// detector, for streams across tenants, models, and strategies.
func TestWireIngestMatchesSerial(t *testing.T) {
	const steps = 60
	_, addr := startServer(t, Config{Workers: 2})
	c := dial(t, addr)

	cases := []struct {
		tenant, stream, model, strategy string
	}{
		{"acme", "pitch-0", "aircraft-pitch", "adaptive"},
		{"acme", "pitch-1", "aircraft-pitch", "fixed"},
		{"globex", "turn-0", "vehicle-turning", "adaptive"},
		{"globex", "rlc-0", "series-rlc", "cusum"},
	}
	for _, tc := range cases {
		h, err := c.Open(tc.tenant, tc.stream, tc.model, tc.strategy, 0)
		if err != nil {
			t.Fatalf("Open(%s/%s): %v", tc.tenant, tc.stream, err)
		}
		m := models.ByName(tc.model)
		strat, err := parseStrategy(tc.strategy)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := sim.Detector(sim.Config{Model: m, Strategy: strat})
		if err != nil {
			t.Fatalf("Detector: %v", err)
		}
		ests, u := wireTrajectory(m, 7, steps)
		for i := 0; i < steps; i++ {
			got, err := c.Ingest(h, ests[i], u)
			if err != nil {
				t.Fatalf("Ingest(%s/%s, %d): %v", tc.tenant, tc.stream, i, err)
			}
			want, err := serial.Step(ests[i], u)
			if err != nil {
				t.Fatalf("serial step %d: %v", i, err)
			}
			if !wireDecisionsEqual(got, want) {
				t.Fatalf("%s/%s step %d: wire decision %+v != serial %+v", tc.tenant, tc.stream, i, got, want)
			}
		}
	}
}

// TestTenantQuota pins the per-tenant stream cap: opens beyond the quota
// fail, re-opens of existing streams don't consume quota, and other
// tenants are unaffected.
func TestTenantQuota(t *testing.T) {
	_, addr := startServer(t, Config{MaxStreamsPerTenant: 2})
	c := dial(t, addr)

	for i := 0; i < 2; i++ {
		if _, err := c.Open("acme", fmt.Sprintf("s-%d", i), "aircraft-pitch", "adaptive", 0); err != nil {
			t.Fatalf("Open %d: %v", i, err)
		}
	}
	if _, err := c.Open("acme", "s-2", "aircraft-pitch", "adaptive", 0); err == nil {
		t.Fatalf("third stream for tenant at quota 2 succeeded")
	} else if !strings.Contains(err.Error(), "quota") {
		t.Fatalf("quota violation error = %q, want mention of quota", err)
	}
	// Identical re-open is idempotent, not a quota consumer.
	if _, err := c.Open("acme", "s-0", "aircraft-pitch", "adaptive", 0); err != nil {
		t.Fatalf("idempotent re-open: %v", err)
	}
	// A conflicting spec for a live stream is rejected.
	if _, err := c.Open("acme", "s-0", "aircraft-pitch", "cusum", 0); err == nil {
		t.Fatalf("conflicting re-open succeeded")
	}
	// Other tenants have their own budget.
	if _, err := c.Open("globex", "s-0", "aircraft-pitch", "adaptive", 0); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
}

// TestCheckpointRestoreLifecycle runs the full lifecycle in-process:
// ingest, checkpoint mid-run, keep going on the original server, then
// bring up a second server from the checkpoint, re-open, and verify its
// continued decision stream matches the original's bit for bit.
func TestCheckpointRestoreLifecycle(t *testing.T) {
	const steps, k = 80, 37
	dir := t.TempDir()
	m := models.ByName("vehicle-turning")
	ests, u := wireTrajectory(m, 21, steps)

	_, addr := startServer(t, Config{CheckpointDir: dir, Workers: 2})
	c := dial(t, addr)
	h, err := c.Open("acme", "turn", "vehicle-turning", "adaptive", 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := make([]core.Decision, steps)
	for i := 0; i < k; i++ {
		if want[i], err = c.Ingest(h, ests[i], u); err != nil {
			t.Fatalf("Ingest(%d): %v", i, err)
		}
	}
	detail, err := c.Checkpoint("mid.awds")
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if !strings.Contains(detail, "mid.awds") {
		t.Fatalf("checkpoint detail %q does not name the file", detail)
	}
	for i := k; i < steps; i++ {
		if want[i], err = c.Ingest(h, ests[i], u); err != nil {
			t.Fatalf("Ingest(%d): %v", i, err)
		}
	}

	// Second server restores the checkpoint; the client re-opens
	// idempotently and replays the suffix.
	_, addr2 := startServer(t, Config{CheckpointDir: dir, Workers: 2})
	c2 := dial(t, addr2)
	if _, err := c2.Restore("mid.awds"); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	h2, err := c2.Open("acme", "turn", "vehicle-turning", "adaptive", 0)
	if err != nil {
		t.Fatalf("re-Open after restore: %v", err)
	}
	for i := k; i < steps; i++ {
		got, err := c2.Ingest(h2, ests[i], u)
		if err != nil {
			t.Fatalf("restored Ingest(%d): %v", i, err)
		}
		if !wireDecisionsEqual(got, want[i]) {
			t.Fatalf("step %d: restored decision %+v != original %+v", i, got, want[i])
		}
	}
}

// TestDrain pins drain semantics: after Drain, ingest and open are
// refused, checkpoint still works, and stats reports the drained state.
func TestDrain(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startServer(t, Config{CheckpointDir: dir})
	c := dial(t, addr)
	h, err := c.Open("acme", "s", "dc-motor", "adaptive", 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	m := models.ByName("dc-motor")
	ests, u := wireTrajectory(m, 2, 5)
	for i := range ests {
		if _, err := c.Ingest(h, ests[i], u); err != nil {
			t.Fatalf("Ingest(%d): %v", i, err)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := c.Ingest(h, ests[0], u); err == nil {
		t.Fatalf("ingest after drain succeeded")
	}
	if _, err := c.Open("acme", "s2", "dc-motor", "adaptive", 0); err == nil {
		t.Fatalf("open after drain succeeded")
	}
	if _, err := c.Checkpoint(""); err != nil {
		t.Fatalf("checkpoint after drain: %v", err)
	}
	if st := srv.Stats(); !st.Draining || st.Streams != 1 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

// TestHTTPFallback drives the same lifecycle over the JSON API and
// cross-checks one decision against the binary protocol's.
func TestHTTPFallback(t *testing.T) {
	srv, addr := startServer(t, Config{Workers: 1})
	httpAddr, err := srv.StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartHTTP: %v", err)
	}
	base := "http://" + httpAddr

	post := func(path string, body, out any) error {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&e)
			return fmt.Errorf("%s: %s (%s)", path, resp.Status, e.Error)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	var opened struct {
		Handle uint64 `json:"handle"`
	}
	if err := post("/v1/open", openRequest{Tenant: "acme", Stream: "h", Model: "series-rlc", Strategy: "adaptive"}, &opened); err != nil {
		t.Fatalf("open: %v", err)
	}
	m := models.ByName("series-rlc")
	ests, u := wireTrajectory(m, 4, 12)

	// Same stream reached over the binary protocol for the cross-check.
	c := dial(t, addr)
	bh, err := c.Open("acme", "h", "series-rlc", "adaptive", 0)
	if err != nil {
		t.Fatalf("binary re-open: %v", err)
	}
	serial, err := sim.Detector(sim.Config{Model: m, Strategy: sim.Adaptive})
	if err != nil {
		t.Fatalf("Detector: %v", err)
	}
	for i := range ests {
		var got decisionJSON
		if i%2 == 0 {
			if err := post("/v1/ingest", ingestRequest{Handle: opened.Handle, Estimate: ests[i], Input: u}, &got); err != nil {
				t.Fatalf("ingest %d: %v", i, err)
			}
		} else {
			d, err := c.Ingest(bh, ests[i], u)
			if err != nil {
				t.Fatalf("binary ingest %d: %v", i, err)
			}
			got = toDecisionJSON(d)
		}
		want, err := serial.Step(ests[i], u)
		if err != nil {
			t.Fatalf("serial %d: %v", i, err)
		}
		if want := toDecisionJSON(want); got.Step != want.Step || got.Window != want.Window ||
			got.Deadline != want.Deadline || got.Alarm != want.Alarm ||
			got.Complementary != want.Complementary || got.ComplementaryStep != want.ComplementaryStep ||
			!slices.Equal(got.Dims, want.Dims) {
			t.Fatalf("step %d: %+v != %+v", i, got, want)
		}
	}

	var stats Stats
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if stats.Streams != 1 || stats.Tenants["acme"] != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestProtocolRejections pins the refusal paths of the frame layer and
// the request validation: oversized frames, unknown messages, unknown
// handles, bad strategies, and restore without a checkpoint directory.
func TestProtocolRejections(t *testing.T) {
	srv, addr := startServer(t, Config{})
	c := dial(t, addr)

	if _, err := c.Open("acme", "s", "aircraft-pitch", "definitely-not-a-strategy", 0); err == nil {
		t.Fatalf("bad strategy accepted")
	}
	if _, err := c.Open("bad/tenant", "s", "aircraft-pitch", "adaptive", 0); err == nil {
		t.Fatalf("tenant with separator accepted")
	}
	if _, err := c.Open("acme", "s", "no-such-plant", "adaptive", 0); err == nil {
		t.Fatalf("unknown model accepted")
	}
	if _, err := c.Ingest(999, []float64{0}, []float64{0}); err == nil {
		t.Fatalf("unknown handle accepted")
	}
	if _, err := c.Checkpoint(""); err == nil {
		t.Fatalf("checkpoint without directory accepted")
	}
	if _, err := c.Restore("../escape.awds"); err == nil {
		t.Fatalf("restore with path separator accepted")
	}

	// An unknown frame type is answered with MsgError, not a dropped conn.
	c.reset()
	rtyp, _, err := c.roundTrip(0x7f)
	if err == nil || rtyp == MsgOK {
		t.Fatalf("unknown frame type: rtyp=0x%02x err=%v", rtyp, err)
	}
	// The connection survives to serve the next request.
	if _, err := c.Open("acme", "ok", "aircraft-pitch", "adaptive", 0); err != nil {
		t.Fatalf("open after protocol error: %v", err)
	}
	_ = srv
}
