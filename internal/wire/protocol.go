// Package wire exposes the fleet engine over the network: a compact
// length-prefixed binary protocol over TCP for sample ingest and decision
// streaming, an HTTP/JSON fallback for scripting, and checkpoint /drain/
// restore RPCs that persist whole-fleet snapshots through the
// internal/state codec. Everything is stdlib-only.
//
// # Framing
//
// Every message is one frame:
//
//	u32  payload length (little-endian, ≤ MaxFrame)
//	u8   message type
//	...  payload
//
// Payload fields use the internal/state primitive encodings (fixed-width
// little-endian integers, IEEE-754 bit patterns, length-prefixed strings)
// without the snapshot container header — framing already delimits
// messages. Each request frame gets exactly one response frame: MsgOpened
// for MsgOpen, MsgDecision for MsgIngest, MsgDecisionBatch for
// MsgIngestBatch, MsgOK for the rest, MsgError for any failure. The
// per-request payloads are documented on the Client methods, which are the
// reference implementation.
//
// # Pipelining
//
// Responses are delivered strictly in request order, and a client may have
// many requests in flight on one connection: the server decouples frame
// reading from response writing, so a pipelined client pays the network
// round trip once per window rather than once per sample. MsgIngestBatch
// carries many samples in one frame for the same amortization at the
// framing layer. Protocol version 2 adds the batch frames; everything a
// version 1 client sends means exactly what it meant before.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/state"
)

// MaxFrame bounds a frame payload; anything larger is a protocol error.
// The largest legitimate frame is an ingest for a wide plant (a few
// hundred bytes), so 1 MiB is generous without letting a hostile peer
// balloon server memory.
const MaxFrame = 1 << 20

// ProtocolVersion is negotiated by MsgHello; the server rejects clients
// that speak a newer major version. Version 2 adds the batched ingest
// frames (MsgIngestBatch/MsgDecisionBatch); a version 1 client never sends
// them and is served exactly as before.
const ProtocolVersion uint16 = 2

// Request message types.
const (
	MsgHello       = 0x01 // u16 version, string client name
	MsgOpen        = 0x02 // string tenant, stream, model, strategy; i64 fixedWin
	MsgIngest      = 0x03 // u64 handle, f64s estimate, f64s input
	MsgCheckpoint  = 0x04 // string name (optional; "" = server picks)
	MsgDrain       = 0x05 // empty
	MsgRestore     = 0x06 // string path
	MsgIngestBatch = 0x07 // u32 count, then per sample: u64 handle, f64s estimate, f64s input (v2)
)

// Response message types.
const (
	MsgOK            = 0x80 // string detail (may be empty)
	MsgError         = 0x81 // string message
	MsgOpened        = 0x82 // u64 handle
	MsgDecision      = 0x83 // encoded Decision, see appendDecision
	MsgDecisionBatch = 0x84 // u32 count, then per sample: u8 status, decision (0) or string error (1) (v2)
)

// writeFrame sends one frame. The payload must fit MaxFrame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d exceeds %d", len(payload), MaxFrame)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one frame, enforcing the MaxFrame bound before
// allocating. The steady-state paths use readFrameInto instead; readFrame
// remains for one-shot callers that want an owned payload.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var buf []byte
	return readFrameInto(r, &buf)
}

// readFrameInto receives one frame into *buf, growing it only when a frame
// exceeds every previous frame's size — the steady-state ingest loop
// therefore reads frames without allocating. The returned payload aliases
// *buf and is valid until the next call; the MaxFrame bound is enforced
// before any growth.
func readFrameInto(r io.Reader, buf *[]byte) (typ byte, payload []byte, err error) {
	// The header is read through *buf as well: a stack array passed to an
	// io.Reader escapes and would cost one allocation per frame.
	if cap(*buf) < 5 {
		*buf = make([]byte, 64)
	}
	hdr := (*buf)[:5]
	if _, err = io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	typ = hdr[4]
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame payload %d exceeds %d", n, MaxFrame)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	payload = (*buf)[:n]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// appendDecision encodes a core.Decision as a MsgDecision payload.
func appendDecision(enc *state.Encoder, d core.Decision) {
	enc.I64(int64(d.Step))
	enc.Int(d.Window)
	enc.Int(d.Deadline)
	enc.Bool(d.Alarm)
	enc.Bool(d.Complementary)
	enc.I64(int64(d.ComplementaryStep))
	enc.U32(uint32(len(d.Dims)))
	for _, dim := range d.Dims {
		enc.Int(dim)
	}
}

// Per-sample status bytes inside a MsgDecisionBatch payload.
const (
	batchOK  = 0 // followed by an encoded decision
	batchErr = 1 // followed by a length-prefixed error string
)

// appendIngestBatch encodes a MsgIngestBatch payload: one (handle,
// estimate, input) tuple per sample. The three slices must have equal
// length (the client validates before calling).
func appendIngestBatch(enc *state.Encoder, handles []uint64, estimates, inputs [][]float64) {
	enc.U32(uint32(len(handles)))
	for i, h := range handles {
		enc.U64(h)
		enc.F64s(estimates[i])
		enc.F64s(inputs[i])
	}
}

// ingestBatch is the decoded form of a MsgIngestBatch payload. Its slices
// and the flat float slab backing every vector are reused across decodes,
// so a warm connection parses batches without allocating.
type ingestBatch struct {
	handles  []uint64
	ests, us [][]float64 // alias slab, one pair per sample
	slab     []float64
	dec      state.Decoder
}

// minBatchSampleBytes is the smallest legal encoded sample: a u64 handle
// plus two empty length-prefixed vectors.
const minBatchSampleBytes = 8 + 4 + 4

// decode parses payload into the batch, replacing its previous contents.
// The payload must be consumed exactly — trailing bytes are a protocol
// error, which is what makes the encoding its own inverse (the fuzz target
// checks re-encoding reproduces the payload byte for byte). A first pass
// validates the layout and sizes the float slab so the second pass can
// hand out slab-aliasing vectors without reallocating under them.
func (ib *ingestBatch) decode(payload []byte) error {
	d := &ib.dec
	d.Reset(payload)
	n := d.U32()
	if err := d.Err(); err != nil {
		return err
	}
	if int(n) > d.Remaining()/minBatchSampleBytes {
		return fmt.Errorf("wire: batch claims %d samples in %d bytes", n, d.Remaining())
	}
	total := 0
	for i := 0; i < int(n); i++ {
		_ = d.U64() // handle
		for j := 0; j < 2; j++ {
			k := d.U32()
			if err := d.Err(); err != nil {
				return err
			}
			if int(k) > d.Remaining()/8 {
				return fmt.Errorf("wire: batch sample %d claims %d floats in %d bytes", i, k, d.Remaining())
			}
			d.SkipTo(d.Offset() + 8*int(k))
			total += int(k)
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes after batch", d.Remaining())
	}

	ib.handles = ib.handles[:0]
	ib.ests = ib.ests[:0]
	ib.us = ib.us[:0]
	if cap(ib.slab) < total {
		ib.slab = make([]float64, total)
	}
	slab, off := ib.slab[:total], 0
	d.Reset(payload)
	_ = d.U32()
	for i := 0; i < int(n); i++ {
		ib.handles = append(ib.handles, d.U64())
		for j := 0; j < 2; j++ {
			k := int(d.U32())
			v := slab[off : off+k : off+k]
			for x := range v {
				v[x] = d.F64()
			}
			off += k
			if j == 0 {
				ib.ests = append(ib.ests, v)
			} else {
				ib.us = append(ib.us, v)
			}
		}
	}
	return d.Err()
}

// appendBatchDecision encodes one sample's outcome inside a
// MsgDecisionBatch payload.
func appendBatchDecision(enc *state.Encoder, d core.Decision, err error) {
	if err != nil {
		enc.U8(batchErr)
		enc.String(err.Error())
		return
	}
	enc.U8(batchOK)
	appendDecision(enc, d)
}

// decodeDecisionBatch parses a MsgDecisionBatch payload into out; the
// encoded count must equal len(out) (the client knows how many samples it
// sent). Per-sample server errors come back as out[i].Err.
func decodeDecisionBatch(dec *state.Decoder, out []IngestResult) error {
	n := dec.U32()
	if err := dec.Err(); err != nil {
		return err
	}
	if int(n) != len(out) {
		return fmt.Errorf("wire: decision batch carries %d results, want %d", n, len(out))
	}
	for i := range out {
		out[i] = IngestResult{}
		switch status := dec.U8(); status {
		case batchOK:
			d, err := decodeDecision(dec)
			if err != nil {
				return err
			}
			out[i].Decision = d
		case batchErr:
			msg := dec.String()
			if err := dec.Err(); err != nil {
				return err
			}
			out[i].Err = errors.New(msg)
		default:
			if err := dec.Err(); err != nil {
				return err
			}
			return fmt.Errorf("wire: decision batch status byte %d", status)
		}
	}
	return dec.Err()
}

// decodeDecision parses a MsgDecision payload.
func decodeDecision(dec *state.Decoder) (core.Decision, error) {
	var d core.Decision
	d.Step = int(dec.I64())
	d.Window = dec.Int()
	d.Deadline = dec.Int()
	d.Alarm = dec.Bool()
	d.Complementary = dec.Bool()
	d.ComplementaryStep = int(dec.I64())
	ndims := dec.U32()
	if err := dec.Err(); err != nil {
		return core.Decision{}, err
	}
	if ndims > 0 {
		if int(ndims) > dec.Remaining()/8 {
			return core.Decision{}, fmt.Errorf("wire: decision claims %d dims in %d bytes", ndims, dec.Remaining())
		}
		d.Dims = make([]int, ndims)
		for i := range d.Dims {
			d.Dims[i] = dec.Int()
		}
	}
	return d, dec.Err()
}
