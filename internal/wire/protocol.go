// Package wire exposes the fleet engine over the network: a compact
// length-prefixed binary protocol over TCP for sample ingest and decision
// streaming, an HTTP/JSON fallback for scripting, and checkpoint /drain/
// restore RPCs that persist whole-fleet snapshots through the
// internal/state codec. Everything is stdlib-only.
//
// # Framing
//
// Every message is one frame:
//
//	u32  payload length (little-endian, ≤ MaxFrame)
//	u8   message type
//	...  payload
//
// Payload fields use the internal/state primitive encodings (fixed-width
// little-endian integers, IEEE-754 bit patterns, length-prefixed strings)
// without the snapshot container header — framing already delimits
// messages. Each request frame gets exactly one response frame: MsgOpened
// for MsgOpen, MsgDecision for MsgIngest, MsgOK for the rest, MsgError for
// any failure. The per-request payloads are documented on the Client
// methods, which are the reference implementation.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/state"
)

// MaxFrame bounds a frame payload; anything larger is a protocol error.
// The largest legitimate frame is an ingest for a wide plant (a few
// hundred bytes), so 1 MiB is generous without letting a hostile peer
// balloon server memory.
const MaxFrame = 1 << 20

// ProtocolVersion is negotiated by MsgHello; the server rejects clients
// that speak a newer major version.
const ProtocolVersion uint16 = 1

// Request message types.
const (
	MsgHello      = 0x01 // u16 version, string client name
	MsgOpen       = 0x02 // string tenant, stream, model, strategy; i64 fixedWin
	MsgIngest     = 0x03 // u64 handle, f64s estimate, f64s input
	MsgCheckpoint = 0x04 // string name (optional; "" = server picks)
	MsgDrain      = 0x05 // empty
	MsgRestore    = 0x06 // string path
)

// Response message types.
const (
	MsgOK       = 0x80 // string detail (may be empty)
	MsgError    = 0x81 // string message
	MsgOpened   = 0x82 // u64 handle
	MsgDecision = 0x83 // encoded Decision, see appendDecision
)

// writeFrame sends one frame. The payload must fit MaxFrame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d exceeds %d", len(payload), MaxFrame)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one frame, enforcing the MaxFrame bound before
// allocating.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame payload %d exceeds %d", n, MaxFrame)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// appendDecision encodes a core.Decision as a MsgDecision payload.
func appendDecision(enc *state.Encoder, d core.Decision) {
	enc.I64(int64(d.Step))
	enc.Int(d.Window)
	enc.Int(d.Deadline)
	enc.Bool(d.Alarm)
	enc.Bool(d.Complementary)
	enc.I64(int64(d.ComplementaryStep))
	enc.U32(uint32(len(d.Dims)))
	for _, dim := range d.Dims {
		enc.Int(dim)
	}
}

// decodeDecision parses a MsgDecision payload.
func decodeDecision(dec *state.Decoder) (core.Decision, error) {
	var d core.Decision
	d.Step = int(dec.I64())
	d.Window = dec.Int()
	d.Deadline = dec.Int()
	d.Alarm = dec.Bool()
	d.Complementary = dec.Bool()
	d.ComplementaryStep = int(dec.I64())
	ndims := dec.U32()
	if err := dec.Err(); err != nil {
		return core.Decision{}, err
	}
	if ndims > 0 {
		if int(ndims) > dec.Remaining()/8 {
			return core.Decision{}, fmt.Errorf("wire: decision claims %d dims in %d bytes", ndims, dec.Remaining())
		}
		d.Dims = make([]int, ndims)
		for i := range d.Dims {
			d.Dims[i] = dec.Int()
		}
	}
	return d, dec.Err()
}
