package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/models"
	"repro/internal/noise"
	"repro/internal/sim"
	"repro/internal/state"
)

// benchSample is one silent steady-state sample (estimate inside the
// model's ε-ball), the case a monitoring fleet ingests almost always.
func benchSample(m *models.Model) (est, u []float64) {
	gen := noise.NewBall(1, m.Sys.StateDim(), m.Eps)
	return gen.Sample(0), make([]float64, m.Sys.InputDim())
}

// BenchmarkServeIngestWire measures one sample round trip over the binary
// protocol on loopback: frame encode, TCP, fleet Submit, decision frame
// back. This is the "after" column of BENCH_serve.json.
func BenchmarkServeIngestWire(b *testing.B) {
	srv := NewServer(Config{Workers: 2})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		b.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	h, err := c.Open("bench", "s", "aircraft-pitch", "adaptive", 0)
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	est, u := benchSample(models.ByName("aircraft-pitch"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Ingest(h, est, u); err != nil {
			b.Fatalf("Ingest: %v", err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkServeIngestHTTP measures the same round trip over the JSON
// fallback — the "before" column of BENCH_serve.json. The gap to the
// binary protocol is the price of accessibility.
func BenchmarkServeIngestHTTP(b *testing.B) {
	srv := NewServer(Config{Workers: 2})
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	httpAddr, err := srv.StartHTTP("127.0.0.1:0")
	if err != nil {
		b.Fatalf("StartHTTP: %v", err)
	}
	h, err := srv.Open("bench", "s", "aircraft-pitch", "adaptive", 0)
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	est, u := benchSample(models.ByName("aircraft-pitch"))
	url := "http://" + httpAddr + "/v1/ingest"
	client := &http.Client{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, err := json.Marshal(ingestRequest{Handle: h, Estimate: est, Input: u})
		if err != nil {
			b.Fatal(err)
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatalf("POST: %v", err)
		}
		var d decisionJSON
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			b.Fatalf("decode: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %s", resp.Status)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
}

// benchBatchServer starts a server with n open aircraft-pitch streams and
// a connected client, returning the per-stream handles and one silent
// sample per stream.
func benchBatchServer(b *testing.B, n int) (*Client, []uint64, [][]float64, [][]float64) {
	b.Helper()
	srv := NewServer(Config{Workers: 2})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatalf("Start: %v", err)
	}
	b.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		b.Fatalf("Dial: %v", err)
	}
	b.Cleanup(func() { c.Close() })
	est, u := benchSample(models.ByName("aircraft-pitch"))
	handles := make([]uint64, n)
	ests := make([][]float64, n)
	inputs := make([][]float64, n)
	for i := 0; i < n; i++ {
		if handles[i], err = c.Open("bench", fmt.Sprintf("s-%04d", i), "aircraft-pitch", "adaptive", 0); err != nil {
			b.Fatalf("Open(%d): %v", i, err)
		}
		ests[i] = est
		inputs[i] = u
	}
	return c, handles, ests, inputs
}

// BenchmarkServeIngestWireBatch measures batched wire ingest: one
// MsgIngestBatch frame per op carrying one silent sample for each of
// batch streams. ns/op is per batch; the samples/sec metric is the
// per-sample throughput `make bench-serve` gates against the batch=1 row
// (the framing-amortization win is the whole point of the batch frames).
func BenchmarkServeIngestWireBatch(b *testing.B) {
	for _, n := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", n), func(b *testing.B) {
			c, handles, ests, inputs := benchBatchServer(b, n)
			out := make([]IngestResult, n)
			if err := c.IngestBatch(handles, ests, inputs, out); err != nil { // warm-up
				b.Fatalf("IngestBatch: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.IngestBatch(handles, ests, inputs, out); err != nil {
					b.Fatalf("IngestBatch: %v", err)
				}
				if out[0].Err != nil {
					b.Fatalf("batch item: %v", out[0].Err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
		})
	}
}

// BenchmarkServeIngestPipelined measures the async single-frame path: one
// sample per MsgIngest frame, but with an in-flight window instead of a
// blocking round trip per sample, round-robin over 8 streams. Together
// with the batch rows this separates the two amortizations: pipelining
// removes the round-trip stalls, batching additionally removes per-frame
// overhead.
func BenchmarkServeIngestPipelined(b *testing.B) {
	for _, w := range []int{16, 256} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			const streams = 8
			c, handles, ests, inputs := benchBatchServer(b, streams)
			delivered := 0
			p, err := c.Pipeline(w, func(_ uint64, _ core.Decision, err error) {
				if err != nil {
					b.Errorf("delivery: %v", err)
				}
				delivered++
			})
			if err != nil {
				b.Fatalf("Pipeline: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % streams
				if err := p.Ingest(handles[k], ests[k], inputs[k]); err != nil {
					b.Fatalf("Ingest: %v", err)
				}
			}
			if err := p.Flush(); err != nil {
				b.Fatalf("Flush: %v", err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
			if err := p.Close(); err != nil {
				b.Fatalf("Close: %v", err)
			}
			if delivered != b.N {
				b.Fatalf("delivered %d of %d", delivered, b.N)
			}
		})
	}
}

// BenchmarkServeIngestWireConns measures synchronous single-frame ingest
// across parallel connections, each with its own stream — the multi-tenant
// shape where per-connection round trips overlap.
func BenchmarkServeIngestWireConns(b *testing.B) {
	for _, nc := range []int{1, 4} {
		b.Run(fmt.Sprintf("conns=%d", nc), func(b *testing.B) {
			srv := NewServer(Config{Workers: 2})
			addr, err := srv.Start("127.0.0.1:0")
			if err != nil {
				b.Fatalf("Start: %v", err)
			}
			defer srv.Close()
			est, u := benchSample(models.ByName("aircraft-pitch"))
			clients := make([]*Client, nc)
			handles := make([]uint64, nc)
			for k := 0; k < nc; k++ {
				if clients[k], err = Dial(addr); err != nil {
					b.Fatalf("Dial: %v", err)
				}
				defer clients[k].Close()
				if handles[k], err = clients[k].Open("bench", fmt.Sprintf("c-%d", k), "aircraft-pitch", "adaptive", 0); err != nil {
					b.Fatalf("Open: %v", err)
				}
				if _, err := clients[k].Ingest(handles[k], est, u); err != nil {
					b.Fatalf("warm-up Ingest: %v", err)
				}
			}
			per := b.N / nc
			if per == 0 {
				per = 1
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			errCh := make(chan error, nc)
			for k := 0; k < nc; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := clients[k].Ingest(handles[k], est, u); err != nil {
							errCh <- err
							return
						}
					}
				}(k)
			}
			wg.Wait()
			select {
			case err := <-errCh:
				b.Fatalf("Ingest: %v", err)
			default:
			}
			b.ReportMetric(float64(nc*per)/b.Elapsed().Seconds(), "samples/sec")
		})
	}
}

// benchFleet builds a warmed fleet of n adaptive aircraft-pitch streams.
func benchFleet(b *testing.B, n int) (*fleet.Engine, func(id string) (*core.System, func(core.Decision, error), error)) {
	b.Helper()
	m := models.ByName("aircraft-pitch")
	mk := func(id string) (*core.System, func(core.Decision, error), error) {
		det, err := sim.Detector(sim.Config{Model: m, Strategy: sim.Adaptive})
		return det, nil, err
	}
	eng := fleet.New(fleet.Config{Workers: 2})
	est, u := benchSample(m)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s-%04d", i)
		det, _, err := mk(id)
		if err != nil {
			b.Fatalf("Detector: %v", err)
		}
		if _, err := eng.AddStream(id, det, nil); err != nil {
			b.Fatalf("AddStream: %v", err)
		}
	}
	for step := 0; step < 3; step++ {
		for i := 0; i < n; i++ {
			if _, err := eng.Submit(fmt.Sprintf("s-%04d", i), est, u); err != nil {
				b.Fatalf("Submit: %v", err)
			}
		}
	}
	return eng, mk
}

// BenchmarkFleetSnapshot measures checkpoint latency: quiescing the fleet
// and encoding every stream's complete runtime state (file I/O excluded —
// that cost belongs to the disk, not the codec).
func BenchmarkFleetSnapshot(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("streams=%d", n), func(b *testing.B) {
			eng, _ := benchFleet(b, n)
			defer eng.Close()
			enc := state.NewEncoder()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc.Reset()
				enc.Header()
				if err := eng.Snapshot(enc); err != nil {
					b.Fatalf("Snapshot: %v", err)
				}
			}
			b.StopTimer()
			b.SetBytes(int64(enc.Len()))
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "streams/sec")
		})
	}
}

// BenchmarkFleetRestore measures recovery latency: rebuilding detectors
// and restoring every stream's state from a snapshot into a fresh engine.
func BenchmarkFleetRestore(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("streams=%d", n), func(b *testing.B) {
			eng, mk := benchFleet(b, n)
			enc := state.NewEncoder()
			enc.Header()
			if err := eng.Snapshot(enc); err != nil {
				b.Fatalf("Snapshot: %v", err)
			}
			eng.Close()
			blob := enc.Bytes()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fresh := fleet.New(fleet.Config{Workers: 2})
				dec := state.NewDecoder(blob)
				if err := dec.Header(); err != nil {
					b.Fatalf("header: %v", err)
				}
				if err := fresh.Restore(dec, mk); err != nil {
					b.Fatalf("Restore: %v", err)
				}
				b.StopTimer()
				fresh.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "streams/sec")
		})
	}
}
