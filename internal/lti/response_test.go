package lti

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestDCGainScalar(t *testing.T) {
	// x' = 0.5x + u: DC gain = 1/(1−0.5) = 2.
	sys := MustNew(mat.Diag(0.5), mat.ColVec(mat.VecOf(1)), nil, 1)
	g, err := sys.DCGain()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.At(0, 0)-2) > 1e-12 {
		t.Errorf("DC gain = %v, want 2", g.At(0, 0))
	}
}

func TestDCGainWithOutputMatrix(t *testing.T) {
	// The testbed car: y = 384.34 x, gain = C·B/(1−A).
	sys := MustNew(mat.Diag(0.8435), mat.ColVec(mat.VecOf(7.7919e-4)),
		mat.FromRows([][]float64{{384.3402}}), 0.05)
	g, err := sys.DCGain()
	if err != nil {
		t.Fatal(err)
	}
	want := 384.3402 * 7.7919e-4 / (1 - 0.8435)
	if math.Abs(g.At(0, 0)-want) > 1e-9 {
		t.Errorf("car DC gain = %v, want %v", g.At(0, 0), want)
	}
}

func TestDCGainIntegratorFails(t *testing.T) {
	sys := MustNew(mat.Diag(1), mat.ColVec(mat.VecOf(1)), nil, 1)
	if _, err := sys.DCGain(); err == nil {
		t.Error("integrator DC gain should fail")
	}
}

func TestStepResponseFirstOrder(t *testing.T) {
	// x' = 0.5x + u: monotone rise to 2, no overshoot.
	sys := MustNew(mat.Diag(0.5), mat.ColVec(mat.VecOf(1)), nil, 1)
	info, err := sys.StepResponse(0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(info.Final-2) > 1e-9 {
		t.Errorf("final = %v, want 2", info.Final)
	}
	if info.Overshoot > 1e-9 {
		t.Errorf("overshoot = %v, want 0", info.Overshoot)
	}
	if info.SettleStep < 0 || info.SettleStep > 10 {
		t.Errorf("settle step = %d", info.SettleStep)
	}
}

func TestStepResponseOscillatoryOvershoots(t *testing.T) {
	// Lightly damped rotation-ish system overshoots its final value.
	sys := MustNew(
		mat.FromRows([][]float64{{0.99, 0.1}, {-0.1, 0.99}}),
		mat.ColVec(mat.VecOf(0, 0.1)), mat.FromRows([][]float64{{1, 0}}), 0.1)
	info, err := sys.StepResponse(0, 0, 800)
	if err != nil {
		t.Fatal(err)
	}
	if info.Overshoot <= 0.1 {
		t.Errorf("expected pronounced overshoot, got %v", info.Overshoot)
	}
	if info.PeakStep <= 0 {
		t.Errorf("peak step = %d", info.PeakStep)
	}
}

func TestStepResponseValidation(t *testing.T) {
	sys := MustNew(mat.Diag(0.5), mat.ColVec(mat.VecOf(1)), nil, 1)
	if _, err := sys.StepResponse(1, 0, 10); err == nil {
		t.Error("bad input channel accepted")
	}
	if _, err := sys.StepResponse(0, 1, 10); err == nil {
		t.Error("bad output channel accepted")
	}
	if _, err := sys.StepResponse(0, 0, 0); err == nil {
		t.Error("zero horizon accepted")
	}
}
