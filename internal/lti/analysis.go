package lti

import (
	"math"

	"repro/internal/mat"
)

// Structural analysis helpers. The detection pipeline's guarantees lean on
// standard system-theoretic properties: the deadline estimator needs the
// input matrix to actually excite the unsafe directions, the observer
// (internal/estim) needs observability, and the recovery LQR
// (internal/recovery) needs stabilizability. These checks let model
// definitions and tests assert those properties instead of assuming them.

// ControllabilityMatrix returns [B, AB, A²B, …, A^{n−1}B] (n × n·m).
func (s *System) ControllabilityMatrix() *mat.Dense {
	n, m := s.StateDim(), s.InputDim()
	out := mat.NewDense(n, n*m)
	block := s.B.Clone()
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				out.Set(i, k*m+j, block.At(i, j))
			}
		}
		block = s.A.Mul(block)
	}
	return out
}

// ObservabilityMatrix returns [C; CA; CA²; …; CA^{n−1}] (n·p × n).
func (s *System) ObservabilityMatrix() *mat.Dense {
	n, p := s.StateDim(), s.OutputDim()
	out := mat.NewDense(n*p, n)
	block := s.C.Clone()
	for k := 0; k < n; k++ {
		for i := 0; i < p; i++ {
			for j := 0; j < n; j++ {
				out.Set(k*p+i, j, block.At(i, j))
			}
		}
		block = block.Mul(s.A)
	}
	return out
}

// Rank estimates the numerical rank of m via Gaussian elimination with
// partial pivoting, treating pivots below tol·‖m‖_inf as zero. tol <= 0
// defaults to 1e-10.
func Rank(m *mat.Dense, tol float64) int {
	if tol <= 0 {
		tol = 1e-10
	}
	rows, cols := m.Rows(), m.Cols()
	work := m.Clone()
	threshold := tol * (1 + work.NormInf())
	rank := 0
	for col := 0; col < cols && rank < rows; col++ {
		// Find the largest pivot in this column at or below row `rank`.
		p, best := -1, threshold
		for r := rank; r < rows; r++ {
			v := work.At(r, col)
			if v < 0 {
				v = -v
			}
			if v > best {
				best, p = v, r
			}
		}
		if p < 0 {
			continue
		}
		// Swap rows p and rank.
		if p != rank {
			for j := 0; j < cols; j++ {
				a, b := work.At(rank, j), work.At(p, j)
				work.Set(rank, j, b)
				work.Set(p, j, a)
			}
		}
		// Eliminate below.
		d := work.At(rank, col)
		for r := rank + 1; r < rows; r++ {
			f := work.At(r, col) / d
			if f == 0 {
				continue
			}
			for j := col; j < cols; j++ {
				work.Set(r, j, work.At(r, j)-f*work.At(rank, j))
			}
		}
		rank++
	}
	return rank
}

// IsControllable reports whether (A, B) is controllable (Kalman rank test).
func (s *System) IsControllable() bool {
	return Rank(s.ControllabilityMatrix(), 0) == s.StateDim()
}

// IsObservable reports whether (A, C) is observable (Kalman rank test).
func (s *System) IsObservable() bool {
	return Rank(s.ObservabilityMatrix(), 0) == s.StateDim()
}

// SpectralRadiusUpperBound returns a cheap upper bound on the spectral
// radius of A via min(‖A^k‖_inf^{1/k}) over a few powers — enough to certify
// stability (ρ < 1) for the evaluation plants without an eigensolver.
func (s *System) SpectralRadiusUpperBound() float64 {
	best := s.A.NormInf()
	p := s.A.Clone()
	k := 1
	for i := 0; i < 6; i++ { // powers 2, 4, 8, 16, 32, 64
		p = p.Mul(p)
		k *= 2
		root := nthRoot(p.NormInf(), k)
		if root < best {
			best = root
		}
	}
	return best
}

func nthRoot(v float64, n int) float64 {
	if v <= 0 {
		return 0
	}
	return math.Pow(v, 1/float64(n))
}

// ControllabilityGramian returns the finite-horizon Gramian
// W = Σ_{k=0}^{T−1} A^k B Bᵀ (A^k)ᵀ: the energy map from input sequences to
// states. Its smallest eigenvalue quantifies how hard the least-excitable
// direction is to reach — the quantitative version of IsControllable.
func (s *System) ControllabilityGramian(horizon int) *mat.Dense {
	if horizon < 1 {
		panic("lti: Gramian horizon must be >= 1")
	}
	n := s.StateDim()
	w := mat.NewDense(n, n)
	ab := s.B.Clone()
	for k := 0; k < horizon; k++ {
		w = w.Add(ab.Mul(ab.T()))
		ab = s.A.Mul(ab)
	}
	return w
}

// ObservabilityGramian returns Σ_{k=0}^{T−1} (A^k)ᵀ Cᵀ C A^k, the dual map
// from initial states to output energy.
func (s *System) ObservabilityGramian(horizon int) *mat.Dense {
	if horizon < 1 {
		panic("lti: Gramian horizon must be >= 1")
	}
	n := s.StateDim()
	w := mat.NewDense(n, n)
	ca := s.C.Clone()
	for k := 0; k < horizon; k++ {
		w = w.Add(ca.T().Mul(ca))
		ca = ca.Mul(s.A)
	}
	return w
}

// GramianConditioning returns the smallest and largest eigenvalues of a
// (symmetric PSD) Gramian — the quantitative controllability/observability
// margins.
func GramianConditioning(w *mat.Dense) (min, max float64, err error) {
	eig, _, err := mat.JacobiEigen(w, 0)
	if err != nil {
		return 0, 0, err
	}
	return eig.Min(), eig.Max(), nil
}
