package lti

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func scalarSys(t *testing.T, a, b, dt float64) *System {
	t.Helper()
	s, err := New(mat.Diag(a), mat.ColVec(mat.VecOf(b)), nil, dt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	a := mat.Identity(2)
	b := mat.NewDense(2, 1)
	if _, err := New(mat.NewDense(2, 3), b, nil, 0.1); err == nil {
		t.Error("non-square A accepted")
	}
	if _, err := New(a, mat.NewDense(3, 1), nil, 0.1); err == nil {
		t.Error("mismatched B accepted")
	}
	if _, err := New(a, b, mat.NewDense(1, 3), 0.1); err == nil {
		t.Error("mismatched C accepted")
	}
	if _, err := New(a, b, nil, 0); err == nil {
		t.Error("zero dt accepted")
	}
	s, err := New(a, b, nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.StateDim() != 2 || s.InputDim() != 1 || s.OutputDim() != 2 {
		t.Errorf("dims = %d/%d/%d", s.StateDim(), s.InputDim(), s.OutputDim())
	}
}

func TestDefaultCIsIdentity(t *testing.T) {
	s := scalarSys(t, 0.9, 0.1, 0.02)
	x := mat.VecOf(3)
	if got := s.Output(x); !got.Equal(x, 0) {
		t.Errorf("Output = %v, want %v", got, x)
	}
}

func TestStepKnown(t *testing.T) {
	s := scalarSys(t, 0.5, 2, 0.1)
	got := s.Step(mat.VecOf(4), mat.VecOf(1), mat.VecOf(0.25))
	// 0.5*4 + 2*1 + 0.25 = 4.25
	if !got.Equal(mat.VecOf(4.25), 1e-12) {
		t.Errorf("Step = %v", got)
	}
}

func TestStepNilDisturbanceIsNominal(t *testing.T) {
	s := scalarSys(t, 0.5, 2, 0.1)
	if got := s.Step(mat.VecOf(4), mat.VecOf(1), nil); !got.Equal(mat.VecOf(4), 1e-12) {
		t.Errorf("nominal Step = %v, want [4]", got)
	}
	if got := s.Predict(mat.VecOf(4), mat.VecOf(1)); !got.Equal(mat.VecOf(4), 1e-12) {
		t.Errorf("Predict = %v", got)
	}
}

func TestStepDimensionPanics(t *testing.T) {
	s := scalarSys(t, 1, 1, 1)
	for name, fn := range map[string]func(){
		"state": func() { s.Step(mat.VecOf(1, 2), mat.VecOf(1), nil) },
		"input": func() { s.Step(mat.VecOf(1), mat.VecOf(1, 2), nil) },
		"dist":  func() { s.Step(mat.VecOf(1), mat.VecOf(1), mat.VecOf(1, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDiscretizeScalarExact(t *testing.T) {
	// ẋ = -x + u, dt=0.1: Ad = e^{-0.1}, Bd = 1 - e^{-0.1}.
	s, err := Discretize(mat.Diag(-1), mat.ColVec(mat.VecOf(1)), nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	wantA := math.Exp(-0.1)
	wantB := 1 - math.Exp(-0.1)
	if math.Abs(s.A.At(0, 0)-wantA) > 1e-12 {
		t.Errorf("Ad = %v, want %v", s.A.At(0, 0), wantA)
	}
	if math.Abs(s.B.At(0, 0)-wantB) > 1e-12 {
		t.Errorf("Bd = %v, want %v", s.B.At(0, 0), wantB)
	}
}

func TestDiscretizeDoubleIntegrator(t *testing.T) {
	// ẋ1 = x2, ẋ2 = u. ZOH: Ad = [[1, dt],[0,1]], Bd = [dt²/2, dt].
	ac := mat.FromRows([][]float64{{0, 1}, {0, 0}})
	bc := mat.ColVec(mat.VecOf(0, 1))
	dt := 0.05
	s, err := Discretize(ac, bc, nil, dt)
	if err != nil {
		t.Fatal(err)
	}
	wantA := mat.FromRows([][]float64{{1, dt}, {0, 1}})
	if !s.A.Equal(wantA, 1e-12) {
		t.Errorf("Ad = %v", s.A)
	}
	if math.Abs(s.B.At(0, 0)-dt*dt/2) > 1e-12 || math.Abs(s.B.At(1, 0)-dt) > 1e-12 {
		t.Errorf("Bd = %v", s.B)
	}
}

func TestDiscretizeMatchesFineEuler(t *testing.T) {
	// ZOH discretization should match a very fine Euler integration of the
	// continuous system under a constant input.
	ac := mat.FromRows([][]float64{{-0.3, 1.2}, {-0.7, -0.5}})
	bc := mat.ColVec(mat.VecOf(0.5, 1))
	dt := 0.2
	s, err := Discretize(ac, bc, nil, dt)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.VecOf(1, -2)
	u := mat.VecOf(0.7)
	// Fine Euler.
	const sub = 200000
	h := dt / sub
	xe := x.Clone()
	for i := 0; i < sub; i++ {
		dx := ac.MulVec(xe).Add(bc.MulVec(u)).Scale(h)
		xe.AddInPlace(dx)
	}
	xd := s.Step(x, u, nil)
	if !xd.Equal(xe, 1e-4) {
		t.Errorf("ZOH=%v fine-Euler=%v", xd, xe)
	}
}

func TestDiscretizeValidation(t *testing.T) {
	if _, err := Discretize(mat.NewDense(2, 3), mat.NewDense(2, 1), nil, 0.1); err == nil {
		t.Error("non-square Ac accepted")
	}
	if _, err := Discretize(mat.Identity(2), mat.NewDense(3, 1), nil, 0.1); err == nil {
		t.Error("mismatched Bc accepted")
	}
	if _, err := Discretize(mat.Identity(2), mat.NewDense(2, 1), nil, -1); err == nil {
		t.Error("negative dt accepted")
	}
}

func TestSimulateTrajectory(t *testing.T) {
	s := scalarSys(t, 1, 1, 1) // x_{t+1} = x_t + u_t
	us := []mat.Vec{{1}, {2}, {3}}
	traj := s.Simulate(mat.VecOf(0), us, nil)
	want := []float64{0, 1, 3, 6}
	if len(traj) != 4 {
		t.Fatalf("traj length = %d", len(traj))
	}
	for i, w := range want {
		if math.Abs(traj[i][0]-w) > 1e-12 {
			t.Errorf("traj[%d] = %v, want %v", i, traj[i][0], w)
		}
	}
}

func TestSimulateWithDisturbances(t *testing.T) {
	s := scalarSys(t, 1, 0, 1)
	us := []mat.Vec{{0}, {0}}
	vs := []mat.Vec{{0.5}, nil}
	traj := s.Simulate(mat.VecOf(1), us, vs)
	if math.Abs(traj[2][0]-1.5) > 1e-12 {
		t.Errorf("traj end = %v, want 1.5", traj[2][0])
	}
}

func TestSimulateDoesNotAliasX0(t *testing.T) {
	s := scalarSys(t, 1, 1, 1)
	x0 := mat.VecOf(7)
	traj := s.Simulate(x0, []mat.Vec{{1}}, nil)
	traj[0][0] = -1
	if x0[0] != 7 {
		t.Error("Simulate aliased x0")
	}
}

func TestMustNewPanicsOnBad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(mat.NewDense(2, 3), mat.NewDense(2, 1), nil, 1)
}

// TestPredictBatchToBitIdenticalToPredictTo pins the fleet batch-kernel
// contract on a real discretized plant: every column of the batched
// prediction must carry exactly the bits of a standalone PredictTo call.
func TestPredictBatchToBitIdenticalToPredictTo(t *testing.T) {
	ac := mat.FromRows([][]float64{
		{-0.313, 56.7, 0},
		{-0.0139, -0.426, 0},
		{0, 56.7, 0},
	})
	bc := mat.ColVec(mat.VecOf(0.232, 0.0203, 0))
	sys := MustDiscretize(ac, bc, nil, 0.02)

	const n = 300 // crosses the kernels' internal cache tile
	xb := mat.NewBatch(sys.StateDim(), n)
	ub := mat.NewBatch(sys.InputDim(), n)
	for s := 0; s < n; s++ {
		for j := 0; j < sys.StateDim(); j++ {
			xb.Set(j, s, math.Sin(float64(7*s+j))*float64(j+1))
		}
		for j := 0; j < sys.InputDim(); j++ {
			ub.Set(j, s, math.Cos(float64(3*s+j)))
		}
	}
	pb := mat.NewBatch(sys.StateDim(), n)
	sys.PredictBatchTo(pb, xb, ub)

	x := mat.NewVec(sys.StateDim())
	u := mat.NewVec(sys.InputDim())
	want := mat.NewVec(sys.StateDim())
	got := mat.NewVec(sys.StateDim())
	for s := 0; s < n; s++ {
		xb.ColTo(x, s)
		ub.ColTo(u, s)
		sys.PredictTo(want, x, u)
		pb.ColTo(got, s)
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("col %d dim %d: batch %v != serial %v", s, j, got[j], want[j])
			}
		}
	}
}

// TestPredictBatchToAllocFree pins the fused sweep's steady-state cost: a
// whole-fleet prediction pass performs zero heap allocations, including on
// batches with a ragged final tile.
func TestPredictBatchToAllocFree(t *testing.T) {
	sys := MustDiscretize(mat.Diag(-0.5, -0.25), mat.ColVec(mat.VecOf(1, 0.5)), nil, 0.05)
	const n = 300 // crosses the tile boundary with a ragged remainder
	xb := mat.NewBatch(sys.StateDim(), n)
	ub := mat.NewBatch(sys.InputDim(), n)
	pb := mat.NewBatch(sys.StateDim(), n)
	if allocs := testing.AllocsPerRun(50, func() {
		sys.PredictBatchTo(pb, xb, ub)
	}); allocs != 0 {
		t.Errorf("PredictBatchTo allocates %v per run, want 0", allocs)
	}
}
