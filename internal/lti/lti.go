// Package lti models discrete linear time-invariant physical systems,
// the plant class of the paper (Eq. (1)):
//
//	x_{t+1} = A x_t + B u_t + v_t
//
// with v_t a bounded per-step uncertainty. Continuous-time models are
// converted with Discretize, which uses the exact zero-order-hold solution
// computed via an augmented matrix exponential.
package lti

import (
	"fmt"

	"repro/internal/mat"
)

// System is a discrete-time LTI system x_{t+1} = A x_t + B u_t (+ v_t),
// y_t = C x_t. Dt records the control step size δ in seconds for
// presentation purposes; the dynamics themselves are purely step-indexed.
type System struct {
	A  *mat.Dense // n x n state matrix
	B  *mat.Dense // n x m input matrix
	C  *mat.Dense // p x n output matrix (identity when fully observable)
	Dt float64    // control step size in seconds
}

// New validates shapes and returns a discrete LTI system. A nil c defaults
// to the identity (fully observable state, as the paper assumes).
func New(a, b, c *mat.Dense, dt float64) (*System, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("lti: A must be square, got %dx%d", a.Rows(), a.Cols())
	}
	if b.Rows() != a.Rows() {
		return nil, fmt.Errorf("lti: B rows %d != state dimension %d", b.Rows(), a.Rows())
	}
	if c == nil {
		c = mat.Identity(a.Rows())
	}
	if c.Cols() != a.Rows() {
		return nil, fmt.Errorf("lti: C cols %d != state dimension %d", c.Cols(), a.Rows())
	}
	if dt <= 0 {
		return nil, fmt.Errorf("lti: non-positive step size %v", dt)
	}
	return &System{A: a, B: b, C: c, Dt: dt}, nil
}

// MustNew is New but panics on error; for package-level model tables.
func MustNew(a, b, c *mat.Dense, dt float64) *System {
	s, err := New(a, b, c, dt)
	if err != nil {
		panic(err)
	}
	return s
}

// StateDim returns n, the state dimension.
func (s *System) StateDim() int { return s.A.Rows() }

// InputDim returns m, the input dimension.
func (s *System) InputDim() int { return s.B.Cols() }

// OutputDim returns p, the output dimension.
func (s *System) OutputDim() int { return s.C.Rows() }

// Step advances the state one control period: A x + B u + v.
// v may be nil for the nominal (disturbance-free) prediction; this is
// exactly the predicted state x̃_t = A x̂_{t-1} + B u_{t-1} of Sec. 4.1.
func (s *System) Step(x mat.Vec, u mat.Vec, v mat.Vec) mat.Vec {
	if len(x) != s.StateDim() {
		panic(fmt.Sprintf("lti: state dimension %d, want %d", len(x), s.StateDim()))
	}
	if len(u) != s.InputDim() {
		panic(fmt.Sprintf("lti: input dimension %d, want %d", len(u), s.InputDim()))
	}
	next := s.A.MulVec(x)
	next.AddInPlace(s.B.MulVec(u))
	if v != nil {
		if len(v) != s.StateDim() {
			panic(fmt.Sprintf("lti: disturbance dimension %d, want %d", len(v), s.StateDim()))
		}
		next.AddInPlace(v)
	}
	return next
}

// Output returns y = C x.
func (s *System) Output(x mat.Vec) mat.Vec { return s.C.MulVec(x) }

// Predict is an alias for the nominal one-step prediction used by the Data
// Logger when forming residuals.
func (s *System) Predict(x mat.Vec, u mat.Vec) mat.Vec { return s.Step(x, u, nil) }

// PredictTo computes the nominal one-step prediction A x + B u into dst
// without allocating — the Data Logger's per-step kernel. dst must not
// alias x or u; dimension mismatches panic exactly like Step (callers
// validate at configuration time).
func (s *System) PredictTo(dst, x, u mat.Vec) {
	s.A.MulVecTo(dst, x)
	s.B.MulVecAddTo(dst, u)
}

// PredictBatchTo computes the nominal one-step prediction A x + B u for a
// whole block of states and inputs at once (column s of dst, x, and u
// belong to stream s), loading the shared plant matrices through cache once
// per batch instead of once per stream. The sweep is fused per stream tile:
// each mat.BatchTile-wide block of columns gets its A-part and its B-part
// back to back, so the tile's dst block is written while still L1-resident
// instead of being streamed through cache twice by two whole-batch kernel
// calls — the difference between compute-bound and bandwidth-bound once the
// batch outgrows L2. Column-wise the summation order is exactly PredictTo's
// — MulVecTo then a grouped MulVecAddTo — so every column is bit-identical
// to a standalone PredictTo call (the fleet engine's differential tests pin
// this). dst must alias neither x nor u; shape mismatches panic exactly
// like PredictTo.
func (s *System) PredictBatchTo(dst, x, u *mat.Batch) {
	n := dst.Len()
	for s0 := 0; s0 < n; s0 += mat.BatchTile {
		s1 := s0 + mat.BatchTile
		if s1 > n {
			s1 = n
		}
		s.A.MulBatchRangeTo(dst, x, s0, s1)
		s.B.MulBatchAddRangeTo(dst, u, s0, s1)
	}
}

// Discretize converts a continuous-time system ẋ = Ac x + Bc u into the
// exact zero-order-hold discrete system over step dt, using the standard
// augmented-exponential identity:
//
//	exp([Ac Bc; 0 0]·dt) = [Ad Bd; 0 I]
//
// This avoids inverting Ac and is exact for LTI dynamics under piecewise-
// constant inputs, which matches the paper's control-step model.
func Discretize(ac, bc *mat.Dense, c *mat.Dense, dt float64) (*System, error) {
	if ac.Rows() != ac.Cols() {
		return nil, fmt.Errorf("lti: Ac must be square, got %dx%d", ac.Rows(), ac.Cols())
	}
	if bc.Rows() != ac.Rows() {
		return nil, fmt.Errorf("lti: Bc rows %d != state dimension %d", bc.Rows(), ac.Rows())
	}
	if dt <= 0 {
		return nil, fmt.Errorf("lti: non-positive step size %v", dt)
	}
	n, m := ac.Rows(), bc.Cols()
	aug := mat.NewDense(n+m, n+m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aug.Set(i, j, ac.At(i, j)*dt)
		}
		for j := 0; j < m; j++ {
			aug.Set(i, n+j, bc.At(i, j)*dt)
		}
	}
	e := mat.Expm(aug)
	ad := mat.NewDense(n, n)
	bd := mat.NewDense(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ad.Set(i, j, e.At(i, j))
		}
		for j := 0; j < m; j++ {
			bd.Set(i, j, e.At(i, n+j))
		}
	}
	return New(ad, bd, c, dt)
}

// MustDiscretize is Discretize but panics on error.
func MustDiscretize(ac, bc *mat.Dense, c *mat.Dense, dt float64) *System {
	s, err := Discretize(ac, bc, c, dt)
	if err != nil {
		panic(err)
	}
	return s
}

// Simulate rolls the system forward from x0 applying inputs us[t] and
// disturbances vs[t] (vs may be nil, or contain nil entries). It returns the
// state trajectory of length len(us)+1 including x0. This is the open-loop
// building block; closed-loop simulation lives in internal/sim.
func (s *System) Simulate(x0 mat.Vec, us []mat.Vec, vs []mat.Vec) []mat.Vec {
	if vs != nil && len(vs) != len(us) {
		panic(fmt.Sprintf("lti: %d disturbances for %d inputs", len(vs), len(us)))
	}
	traj := make([]mat.Vec, len(us)+1)
	traj[0] = x0.Clone()
	x := x0
	for t, u := range us {
		var v mat.Vec
		if vs != nil {
			v = vs[t]
		}
		x = s.Step(x, u, v)
		traj[t+1] = x
	}
	return traj
}
