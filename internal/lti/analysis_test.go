package lti

import (
	"testing"

	"repro/internal/mat"
)

func TestControllabilityMatrixShapeAndContent(t *testing.T) {
	// A = [[1,1],[0,1]], B = [0;1]: ctrb = [B, AB] = [[0,1],[1,1]].
	sys := MustNew(
		mat.FromRows([][]float64{{1, 1}, {0, 1}}),
		mat.ColVec(mat.VecOf(0, 1)), nil, 1)
	c := sys.ControllabilityMatrix()
	want := mat.FromRows([][]float64{{0, 1}, {1, 1}})
	if !c.Equal(want, 1e-12) {
		t.Errorf("ctrb = %v", c)
	}
}

func TestObservabilityMatrixShapeAndContent(t *testing.T) {
	// C = [1 0], A = [[1,1],[0,1]]: obsv = [C; CA] = [[1,0],[1,1]].
	sys := MustNew(
		mat.FromRows([][]float64{{1, 1}, {0, 1}}),
		mat.ColVec(mat.VecOf(0, 1)),
		mat.FromRows([][]float64{{1, 0}}), 1)
	o := sys.ObservabilityMatrix()
	want := mat.FromRows([][]float64{{1, 0}, {1, 1}})
	if !o.Equal(want, 1e-12) {
		t.Errorf("obsv = %v", o)
	}
}

func TestRank(t *testing.T) {
	cases := []struct {
		m    *mat.Dense
		want int
	}{
		{mat.Identity(3), 3},
		{mat.NewDense(3, 3), 0},
		{mat.FromRows([][]float64{{1, 2}, {2, 4}}), 1},
		{mat.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}), 2},
		{mat.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}}), 2},
		{mat.FromRows([][]float64{{0, 1}, {1, 0}}), 2}, // needs pivoting
	}
	for i, c := range cases {
		if got := Rank(c.m, 0); got != c.want {
			t.Errorf("case %d: rank = %d, want %d", i, got, c.want)
		}
	}
}

func TestControllabilityObservabilityVerdicts(t *testing.T) {
	// Double integrator with force input: controllable; position output:
	// observable.
	sys := MustNew(
		mat.FromRows([][]float64{{1, 0.1}, {0, 1}}),
		mat.ColVec(mat.VecOf(0, 0.1)),
		mat.FromRows([][]float64{{1, 0}}), 0.1)
	if !sys.IsControllable() || !sys.IsObservable() {
		t.Error("double integrator should be controllable and observable")
	}

	// Decoupled second mode with no input path: uncontrollable.
	unctrl := MustNew(
		mat.FromRows([][]float64{{0.5, 0}, {0, 0.7}}),
		mat.ColVec(mat.VecOf(1, 0)), nil, 1)
	if unctrl.IsControllable() {
		t.Error("decoupled mode without input should be uncontrollable")
	}

	// Velocity-only output of the double integrator: position unobservable.
	unobs := MustNew(
		mat.FromRows([][]float64{{1, 0.1}, {0, 1}}),
		mat.ColVec(mat.VecOf(0, 0.1)),
		mat.FromRows([][]float64{{0, 1}}), 0.1)
	if unobs.IsObservable() {
		t.Error("velocity-only output should leave position unobservable")
	}
}

func TestSpectralRadiusUpperBound(t *testing.T) {
	stable := MustNew(mat.Diag(0.5, -0.8), mat.NewDense(2, 1).Add(mat.NewDense(2, 1)), nil, 1)
	if b := stable.SpectralRadiusUpperBound(); b >= 1 || b < 0.8-1e-9 {
		t.Errorf("stable bound = %v, want in [0.8, 1)", b)
	}
	unstable := MustNew(mat.Diag(1.2), mat.ColVec(mat.VecOf(1)), nil, 1)
	if b := unstable.SpectralRadiusUpperBound(); b < 1.2-1e-9 {
		t.Errorf("unstable bound = %v, must be >= 1.2", b)
	}
	// The shear matrix has eigenvalue 1 but ‖A‖ > 1: the power bound must
	// tighten toward 1.
	shear := MustNew(mat.FromRows([][]float64{{1, 1}, {0, 1}}), mat.ColVec(mat.VecOf(0, 1)), nil, 1)
	if b := shear.SpectralRadiusUpperBound(); b > 1.3 {
		t.Errorf("shear bound = %v, want close to 1", b)
	}
}

func TestControllabilityGramianScalar(t *testing.T) {
	// x' = 0.5x + u over 3 steps: W = 1 + 0.25 + 0.0625 = 1.3125.
	sys := MustNew(mat.Diag(0.5), mat.ColVec(mat.VecOf(1)), nil, 1)
	w := sys.ControllabilityGramian(3)
	if got := w.At(0, 0); got != 1.3125 {
		t.Errorf("Gramian = %v, want 1.3125", got)
	}
}

func TestObservabilityGramianScalar(t *testing.T) {
	// y = 2x, A = 0.5, 2 steps: W = 4 + 4·0.25 = 5.
	sys := MustNew(mat.Diag(0.5), mat.ColVec(mat.VecOf(1)),
		mat.FromRows([][]float64{{2}}), 1)
	w := sys.ObservabilityGramian(2)
	if got := w.At(0, 0); got != 5 {
		t.Errorf("Gramian = %v, want 5", got)
	}
}

func TestGramianConditioningDetectsWeakDirection(t *testing.T) {
	// Input reaches only dim 0 directly; dim 1 fills in weakly through the
	// coupling, so the Gramian's minimum eigenvalue is much smaller than
	// its maximum.
	sys := MustNew(
		mat.FromRows([][]float64{{0.9, 0}, {0.05, 0.9}}),
		mat.ColVec(mat.VecOf(1, 0)), nil, 0.1)
	w := sys.ControllabilityGramian(20)
	lo, hi, err := GramianConditioning(w)
	if err != nil {
		t.Fatal(err)
	}
	if lo <= 0 {
		t.Errorf("min eigenvalue %v should be positive (controllable)", lo)
	}
	if hi/lo < 10 {
		t.Errorf("conditioning %v too benign for a weakly coupled mode", hi/lo)
	}
	// The fully decoupled variant is uncontrollable: min eigenvalue ~0.
	dec := MustNew(mat.Diag(0.9, 0.9), mat.ColVec(mat.VecOf(1, 0)), nil, 0.1)
	lo2, _, err := GramianConditioning(dec.ControllabilityGramian(20))
	if err != nil {
		t.Fatal(err)
	}
	if lo2 > 1e-9 {
		t.Errorf("uncontrollable Gramian min eigenvalue = %v, want ~0", lo2)
	}
}

func TestGramianHorizonPanics(t *testing.T) {
	sys := MustNew(mat.Diag(1), mat.ColVec(mat.VecOf(1)), nil, 1)
	for i, fn := range []func(){
		func() { sys.ControllabilityGramian(0) },
		func() { sys.ObservabilityGramian(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
