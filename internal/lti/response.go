package lti

import (
	"fmt"

	"repro/internal/mat"
)

// Response helpers used by model documentation and tests: the DC gain
// (steady-state output per unit constant input) and step-response
// characteristics that sanity-check the Table 1 closed loops.

// DCGain returns C (I − A)⁻¹ B, the steady-state output produced by a unit
// constant input. It fails when (I − A) is singular (integrating plants
// have no finite DC gain).
func (s *System) DCGain() (*mat.Dense, error) {
	n := s.StateDim()
	ima := mat.Identity(n).Sub(s.A)
	inv, err := mat.Inverse(ima)
	if err != nil {
		return nil, fmt.Errorf("lti: plant has an integrating mode (I−A singular): %w", err)
	}
	return s.C.Mul(inv).Mul(s.B), nil
}

// StepInfo summarizes the response of one output channel to a unit step on
// one input channel over the given horizon.
type StepInfo struct {
	Final     float64 // value at the end of the horizon
	Peak      float64 // maximum absolute excursion
	PeakStep  int     // step of the peak
	Overshoot float64 // (Peak − |Final|)/|Final|, 0 when Final ≈ 0
	// SettleStep is the first step after which the response stays within
	// 2% of Final; −1 if it never settles within the horizon.
	SettleStep int
}

// StepResponse simulates a unit step on input channel `in`, observing
// output channel `out`, for `horizon` steps from the origin.
func (s *System) StepResponse(in, out, horizon int) (StepInfo, error) {
	if in < 0 || in >= s.InputDim() {
		return StepInfo{}, fmt.Errorf("lti: input channel %d out of range", in)
	}
	if out < 0 || out >= s.OutputDim() {
		return StepInfo{}, fmt.Errorf("lti: output channel %d out of range", out)
	}
	if horizon < 1 {
		return StepInfo{}, fmt.Errorf("lti: horizon %d must be >= 1", horizon)
	}
	u := mat.NewVec(s.InputDim())
	u[in] = 1
	x := mat.NewVec(s.StateDim())
	ys := make([]float64, horizon)
	for t := 0; t < horizon; t++ {
		x = s.Step(x, u, nil)
		ys[t] = s.Output(x)[out]
	}

	info := StepInfo{Final: ys[horizon-1], SettleStep: -1}
	for t, y := range ys {
		a := abs(y)
		if a > info.Peak {
			info.Peak = a
			info.PeakStep = t
		}
	}
	if f := abs(info.Final); f > 1e-12 {
		info.Overshoot = (info.Peak - f) / f
		if info.Overshoot < 0 {
			info.Overshoot = 0
		}
		band := 0.02 * f
		for t := horizon - 1; t >= 0; t-- {
			if abs(ys[t]-info.Final) > band {
				if t+1 < horizon {
					info.SettleStep = t + 1
				}
				break
			}
			if t == 0 {
				info.SettleStep = 0
			}
		}
	}
	return info, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
