// Package logger implements the paper's Data Logger (Sec. 5): a
// sliding-window protocol that, at every control step, computes the residual
// z_t = |x̂_t − x̃_t| against the one-step model prediction
// x̃_t = A x̂_{t−1} + B u_{t−1}, then buffers, holds, and releases data:
//
//   - Buffer: samples inside the current detection window w_c — possibly
//     compromised, still being checked by the detector.
//   - Hold: samples older than the current window but within the sliding
//     window w_m — trusted, needed as reachability initial states.
//   - Release: samples older than t − w_m − 1 — dropped to bound storage.
//
// The sliding-window size is fixed at the maximum detection window w_m
// (Sec. 4.3) so both the Adaptive Detector and the Deadline Estimator always
// find the samples they need, however the detection window moves.
package logger

import (
	"fmt"

	"repro/internal/lti"
	"repro/internal/mat"
)

// Entry is one logged control step.
type Entry struct {
	Step     int
	Estimate mat.Vec // state estimate x̂_t as delivered by the sensors
	Residual mat.Vec // |x̂_t − x̃_t|, element-wise
}

// Status classifies an entry relative to the current detection window.
type Status int

// Statuses in the order the protocol ages data: buffered while under
// detection, held while trusted history, released once past w_m.
const (
	Buffered Status = iota // inside the detection window, under scrutiny
	Held                   // outside the detection window, trusted
	Released               // outside the sliding window, dropped
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Buffered:
		return "buffered"
	case Held:
		return "held"
	case Released:
		return "released"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Logger records estimates and residuals over the sliding window.
//
// Storage is a fixed ring of w_m+2 entries whose Estimate/Residual vectors
// are preallocated once at construction and written in place, so the
// steady-state Observe path performs zero heap allocations. Entries handed
// out by Entry, Observe, and Residuals alias this ring storage: they stay
// valid exactly as long as the protocol retains the step (i.e. until it is
// Released) — callers that need a sample beyond its release point must
// clone it.
type Logger struct {
	sys      *lti.System
	maxWin   int     // w_m
	ring     []Entry // fixed capacity maxWin+2, vectors preallocated
	start    int     // ring index of the oldest retained entry
	count    int     // retained entries
	nextStep int
	prevEst  mat.Vec // last estimate (prediction input); aliases its ring slot
	pred     mat.Vec // scratch: one-step model prediction
	zeroU    mat.Vec // all-zero input for nil transitionU (never written)
	hasPrev  bool
	released int
}

// New returns a logger for the given plant model with sliding window w_m.
func New(sys *lti.System, maxWin int) *Logger {
	if maxWin < 1 {
		panic(fmt.Sprintf("logger: maximum window %d must be >= 1", maxWin))
	}
	n := sys.StateDim()
	ring := make([]Entry, maxWin+2)
	// The ring's vectors live in one flat backing array with each entry's
	// estimate and residual adjacent, so the detection hot path touches one
	// contiguous span per step it visits instead of chasing per-entry
	// allocations — with thousands of detector streams the ring is the bulk
	// of the per-step memory traffic, and the steps a silent step visits
	// come in estimate/residual pairs: the new entry writes both halves of
	// one span, and the trusted-estimate read at t−w−1 shares its span with
	// the residual leaving the sliding window sum. The capped subslices keep
	// an accidental append from bleeding into the neighboring half.
	flat := make([]float64, len(ring)*2*n)
	for i := range ring {
		ring[i].Estimate = flat[i*2*n : i*2*n+n : i*2*n+n]
		ring[i].Residual = flat[i*2*n+n : (i+1)*2*n : (i+1)*2*n]
	}
	return &Logger{
		sys:    sys,
		maxWin: maxWin,
		ring:   ring,
		pred:   mat.NewVec(n),
		zeroU:  mat.NewVec(sys.InputDim()),
	}
}

// MaxWindow returns w_m.
func (l *Logger) MaxWindow() int { return l.maxWin }

// Len returns the number of retained entries.
func (l *Logger) Len() int { return l.count }

// Observe logs the state estimate received at the next control step together
// with the control input that drove the transition into it — i.e. at step t
// pass x̂_t and u_{t−1}, so the residual is
// |x̂_t − (A x̂_{t−1} + B u_{t−1})| exactly as Sec. 5 defines it. A nil
// transitionU is treated as zero input. For the first step there is no
// prediction, so the residual is zero.
//
// A mismatched estimate or input dimension is a configuration fault: it is
// returned as an error without logging anything, so the control loop can
// surface it instead of dying mid-flight.
func (l *Logger) Observe(estimate, transitionU mat.Vec) (*Entry, error) {
	if transitionU != nil && len(transitionU) != l.sys.InputDim() {
		return nil, fmt.Errorf("logger: input dimension %d, want %d", len(transitionU), l.sys.InputDim())
	}
	return l.observe(estimate, transitionU, nil)
}

// ObservePredicted is Observe for callers that already computed the
// one-step model prediction x̃_t = A x̂_{t−1} + B u_{t−1} externally — the
// fleet engine's batch kernels produce it for a whole shard at once. pred
// must be exactly that prediction for this logger's previous estimate;
// handing in anything else silently corrupts the residual stream. Before
// the first observation pred is ignored (there is no prediction yet and
// the residual is zero), so callers may pass scratch.
func (l *Logger) ObservePredicted(estimate, pred mat.Vec) (*Entry, error) {
	if len(pred) != l.sys.StateDim() {
		return nil, fmt.Errorf("logger: prediction dimension %d, want %d", len(pred), l.sys.StateDim())
	}
	return l.observe(estimate, nil, pred)
}

// observe is the shared logging path: a nil pred is computed in place from
// the retained previous estimate, a non-nil pred is trusted as the model
// prediction. Keeping one implementation guarantees the batched and the
// standalone paths can never drift apart.
func (l *Logger) observe(estimate, transitionU, pred mat.Vec) (*Entry, error) {
	if len(estimate) != l.sys.StateDim() {
		return nil, fmt.Errorf("logger: estimate dimension %d, want %d", len(estimate), l.sys.StateDim())
	}
	// Release: keep exactly the sliding window [t − w_m − 1, t] by
	// recycling the oldest ring slot once the ring is full.
	idx := l.start + l.count
	if idx >= len(l.ring) {
		idx -= len(l.ring)
	}
	if l.count == len(l.ring) {
		idx = l.start
		l.start++
		if l.start == len(l.ring) {
			l.start = 0
		}
		l.count--
		l.released++
	}

	e := &l.ring[idx]
	e.Step = l.nextStep
	estimate.CopyTo(e.Estimate)
	if l.hasPrev {
		if pred == nil {
			u := transitionU
			if u == nil {
				u = l.zeroU
			}
			l.sys.PredictTo(l.pred, l.prevEst, u)
			pred = l.pred
		}
		mat.AbsDiffTo(e.Residual, estimate, pred)
	} else {
		for i := range e.Residual {
			e.Residual[i] = 0
		}
	}
	// The new entry's estimate IS the next step's prediction input; alias
	// its ring slot instead of keeping a second copy. The alias stays valid
	// because the ring holds maxWin+2 ≥ 3 entries, so the most recent slot
	// is never the one recycled by the next observation.
	l.prevEst = e.Estimate
	l.hasPrev = true
	l.count++
	l.nextStep++
	return e, nil
}

// Observed returns the lifetime number of samples logged this run — the
// protocol's buffer count.
func (l *Logger) Observed() int { return l.nextStep }

// Released returns the lifetime number of samples dropped past the sliding
// window this run — the protocol's release count. Observed − Released is
// the current occupancy (Len).
func (l *Logger) Released() int { return l.released }

// Counts classifies the retained entries under the current detection
// window w: how many are still buffered (under scrutiny) and how many are
// held as trusted history — the live split of the Buffer/Hold protocol.
func (l *Logger) Counts(w int) (buffered, held int) {
	t := l.Current()
	first := l.nextStep - l.count
	for s := first; s < l.nextStep; s++ {
		if s >= t-w {
			buffered++
		} else {
			held++
		}
	}
	return buffered, held
}

// Current returns the latest logged step index, or -1 if nothing is logged.
func (l *Logger) Current() int { return l.nextStep - 1 }

// Entry returns the logged entry for an absolute step, if still retained.
// The entry's vectors alias the logger's ring storage (see Logger).
func (l *Logger) Entry(step int) (Entry, bool) {
	first := l.nextStep - l.count
	idx := step - first
	if idx < 0 || idx >= l.count {
		return Entry{}, false
	}
	ri := l.start + idx
	if ri >= len(l.ring) {
		ri -= len(l.ring)
	}
	return l.ring[ri], true
}

// EntryRange returns the retained entries for the inclusive step range
// [from, to] as up to two contiguous segments of the ring (the range may
// wrap the ring's backing array once). Iterating a then b visits the
// entries in ascending step order. ok is false if any step in the range is
// no longer (or not yet) retained. The entries alias ring storage (see
// Logger); the per-step detection hot path uses this instead of repeated
// Entry calls so the windowed residual sum runs over contiguous memory.
func (l *Logger) EntryRange(from, to int) (a, b []Entry, ok bool) {
	if from > to {
		return nil, nil, false
	}
	first := l.nextStep - l.count
	lo := from - first
	hi := to - first
	if lo < 0 || hi >= l.count {
		return nil, nil, false
	}
	ri := l.start + lo
	if ri >= len(l.ring) {
		ri -= len(l.ring)
	}
	span := hi - lo + 1
	if tail := len(l.ring) - ri; span > tail {
		return l.ring[ri:], l.ring[:span-tail], true
	}
	return l.ring[ri : ri+span], nil, true
}

// PrevEstimate returns the logger's retained copy of the last observed
// estimate — the prediction input x̂_{t−1} — or nil before the first
// observation. The vector aliases the logger's internal storage and is
// overwritten by the next Observe; callers must treat it as read-only.
// The fleet engine gathers it into the batch prediction kernels instead
// of mirroring its own copy of every stream's last estimate.
func (l *Logger) PrevEstimate() mat.Vec {
	if !l.hasPrev {
		return nil
	}
	return l.prevEst
}

// Residuals returns the residual vectors for the inclusive step range
// [from, to]. It returns false if any step in the range is no longer (or not
// yet) retained. The vectors alias ring storage (see Logger); callers on
// the per-step hot path iterate Entry directly instead to avoid the slice
// allocation.
func (l *Logger) Residuals(from, to int) ([]mat.Vec, bool) {
	if from > to {
		return nil, false
	}
	out := make([]mat.Vec, 0, to-from+1)
	for s := from; s <= to; s++ {
		e, ok := l.Entry(s)
		if !ok {
			return nil, false
		}
		out = append(out, e.Residual)
	}
	return out, true
}

// TrustedEstimate returns the latest trustworthy state estimate for a
// detection window of size w ending at the current step: x̂_{t−w−1}
// (Sec. 3.3.1). ok is false when that step has been released or not yet
// observed, and for a (nonsensical) negative window. For w such that
// t−w−1 < 0, the first logged estimate is returned (run prefix is trusted
// by assumption).
func (l *Logger) TrustedEstimate(w int) (mat.Vec, bool) {
	if w < 0 {
		return nil, false
	}
	t := l.Current()
	if t < 0 {
		return nil, false
	}
	step := t - w - 1
	if step < 0 {
		step = 0
	}
	e, ok := l.Entry(step)
	if !ok {
		return nil, false
	}
	return e.Estimate, true
}

// StatusOf classifies step s under the current detection window w.
func (l *Logger) StatusOf(s, w int) Status {
	t := l.Current()
	switch {
	case s < t-l.maxWin-1:
		return Released
	case s >= t-w:
		return Buffered
	default:
		return Held
	}
}

// Reset clears all state for a fresh run; the ring storage is retained.
func (l *Logger) Reset() {
	l.start = 0
	l.count = 0
	l.nextStep = 0
	l.hasPrev = false
	l.prevEst = nil
	l.released = 0
}
