package logger

import (
	"testing"

	"repro/internal/mat"
)

// fill logs steps 0..n-1 with distinguishable estimates (value == step).
func fill(t *testing.T, l *Logger, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		must(l.Observe(mat.VecOf(float64(i)), nil))
	}
}

// TestEntryRangeWrapBoundary drives the ring past capacity so the oldest
// retained entry sits mid-array, then asks for a range that crosses the
// backing array's end: the result must come back as two contiguous
// segments that concatenate to the ascending step order.
func TestEntryRangeWrapBoundary(t *testing.T) {
	l := New(testSys(t), 4) // ring capacity maxWin+2 = 6
	fill(t, l, 9)           // retained steps 3..8, start mid-ring

	first := l.Current() - l.Len() + 1
	if first != 3 {
		t.Fatalf("oldest retained step = %d, want 3", first)
	}
	a, b, ok := l.EntryRange(4, 8)
	if !ok {
		t.Fatal("EntryRange(4, 8) not retained")
	}
	if len(b) == 0 {
		t.Fatalf("range did not wrap the ring: a=%d entries, b empty", len(a))
	}
	want := 4
	for _, seg := range [][]Entry{a, b} {
		for _, e := range seg {
			if e.Step != want {
				t.Fatalf("segment entry step = %d, want %d", e.Step, want)
			}
			if e.Estimate[0] != float64(want) {
				t.Fatalf("step %d estimate = %v, want %d", want, e.Estimate[0], want)
			}
			want++
		}
	}
	if want != 9 {
		t.Fatalf("segments covered steps up to %d, want 9", want)
	}

	// The full retained range and the evicted step just before it.
	if _, _, ok := l.EntryRange(3, 8); !ok {
		t.Error("full retained range rejected")
	}
	if _, _, ok := l.EntryRange(2, 8); ok {
		t.Error("range including evicted step 2 accepted")
	}
	if _, _, ok := l.EntryRange(3, 9); ok {
		t.Error("range including unlogged step 9 accepted")
	}
}

// TestEntryRangeSingleStep pins the from==to degenerate case on both sides
// of the wrap point: exactly one entry, always in segment a.
func TestEntryRangeSingleStep(t *testing.T) {
	l := New(testSys(t), 4)
	fill(t, l, 9) // retained 3..8; ring indices of steps 6.. wrapped to the front
	for step := 3; step <= 8; step++ {
		a, b, ok := l.EntryRange(step, step)
		if !ok {
			t.Fatalf("EntryRange(%d, %d) not retained", step, step)
		}
		if len(a) != 1 || len(b) != 0 {
			t.Fatalf("EntryRange(%d, %d) = %d+%d entries, want 1+0", step, step, len(a), len(b))
		}
		if a[0].Step != step {
			t.Fatalf("single-step entry = step %d, want %d", a[0].Step, step)
		}
	}
	// Inverted bounds are an empty request, not a one-step one.
	if _, _, ok := l.EntryRange(5, 4); ok {
		t.Error("EntryRange(5, 4) accepted inverted bounds")
	}
}

// TestEntryRangeSpansReset pins that Reset severs history: step numbering
// restarts at 0, pre-reset steps are unreachable even though their ring
// slots still physically hold the old vectors, and a range written before
// the reset never leaks stale entries.
func TestEntryRangeSpansReset(t *testing.T) {
	l := New(testSys(t), 4)
	fill(t, l, 6) // steps 0..5 retained
	if _, _, ok := l.EntryRange(2, 5); !ok {
		t.Fatal("pre-reset range missing")
	}
	l.Reset()

	// Immediately after Reset nothing is retained at all.
	if _, _, ok := l.EntryRange(0, 0); ok {
		t.Error("EntryRange(0, 0) accepted on a reset logger")
	}
	if l.Len() != 0 || l.Observed() != 0 || l.Released() != 0 {
		t.Fatalf("reset logger: Len=%d Observed=%d Released=%d, want 0/0/0",
			l.Len(), l.Observed(), l.Released())
	}

	// New run: three fresh observations with new values. The old range
	// [2, 5] now straddles the reset — its tail is beyond the new history
	// and must be rejected, not served from surviving ring slots.
	for i := 0; i < 3; i++ {
		must(l.Observe(mat.VecOf(100+float64(i)), nil))
	}
	if _, _, ok := l.EntryRange(2, 5); ok {
		t.Error("range spanning the reset accepted")
	}
	a, b, ok := l.EntryRange(0, 2)
	if !ok || len(a)+len(b) != 3 {
		t.Fatalf("post-reset range = %d+%d entries (ok=%v), want 3", len(a), len(b), ok)
	}
	for i, e := range a {
		if e.Step != i || e.Estimate[0] != 100+float64(i) {
			t.Fatalf("post-reset entry %d = step %d estimate %v, want step %d estimate %d",
				i, e.Step, e.Estimate[0], i, 100+i)
		}
	}

	// First residual of the new run is zero: Reset dropped prevEst, so the
	// run restarts without a prediction input.
	e, ok := l.Entry(0)
	if !ok || e.Residual[0] != 0 {
		t.Fatalf("post-reset first residual = %v (ok=%v), want 0", e.Residual, ok)
	}
}
