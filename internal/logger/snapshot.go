package logger

import (
	"fmt"

	"repro/internal/state"
)

// loggerStateVersion is the component version of the logger's snapshot
// layout (see internal/state for the versioning rules).
const loggerStateVersion = 1

// Snapshot encodes the logger's complete runtime state: the protocol
// counters and every retained ring entry in ascending step order. Entry
// values are written bit-exactly, so a Restore reproduces the residual
// history the detectors sum over bit-for-bit.
//
// The ring's physical layout (start index, wrap position) is deliberately
// not part of the state: entries are written logically and re-packed from
// slot 0 on restore. Every read path (Entry, EntryRange, the window
// detectors' residual walks) visits entries in step order, so the physical
// re-packing is unobservable — decisions after a restore are bit-identical
// to decisions after the original layout.
func (l *Logger) Snapshot(enc *state.Encoder) {
	enc.Begin(state.TagLogger, loggerStateVersion)
	enc.Int(l.maxWin)
	enc.Int(l.sys.StateDim())
	enc.I64(int64(l.nextStep))
	enc.U32(uint32(l.count))
	enc.I64(int64(l.released))
	enc.Bool(l.hasPrev)
	for i := 0; i < l.count; i++ {
		ri := l.start + i
		if ri >= len(l.ring) {
			ri -= len(l.ring)
		}
		e := &l.ring[ri]
		enc.I64(int64(e.Step))
		enc.F64s(e.Estimate)
		enc.F64s(e.Residual)
	}
}

// Restore replaces the logger's runtime state with a snapshot taken from a
// logger of identical configuration (same plant dimensions, same maximum
// window). Structural mismatches and corrupt snapshots are returned as
// errors with the logger left in an unspecified but memory-safe state;
// callers restore into freshly constructed pipelines and discard them on
// failure.
func (l *Logger) Restore(dec *state.Decoder) error {
	dec.Expect(state.TagLogger, loggerStateVersion)
	maxWin := dec.Int()
	dim := dec.Int()
	nextStep := dec.I64()
	count := int(dec.U32())
	released := dec.I64()
	hasPrev := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if maxWin != l.maxWin {
		return fmt.Errorf("logger: snapshot max window %d, want %d", maxWin, l.maxWin)
	}
	if dim != l.sys.StateDim() {
		return fmt.Errorf("logger: snapshot state dimension %d, want %d", dim, l.sys.StateDim())
	}
	if count < 0 || count > len(l.ring) {
		return fmt.Errorf("logger: snapshot retains %d entries, ring capacity %d", count, len(l.ring))
	}
	if nextStep < int64(count) || released != nextStep-int64(count) {
		return fmt.Errorf("logger: inconsistent snapshot counters (observed %d, retained %d, released %d)",
			nextStep, count, released)
	}
	if hasPrev != (nextStep > 0) || (count == 0 && nextStep > 0) {
		return fmt.Errorf("logger: inconsistent snapshot prediction state")
	}
	l.start = 0
	l.count = count
	l.nextStep = int(nextStep)
	l.released = int(released)
	l.hasPrev = hasPrev
	first := l.nextStep - count
	for i := 0; i < count; i++ {
		e := &l.ring[i]
		step := dec.I64()
		dec.F64s(e.Estimate)
		dec.F64s(e.Residual)
		if dec.Err() == nil && int(step) != first+i {
			return fmt.Errorf("logger: snapshot entry %d has step %d, want %d", i, step, first+i)
		}
		e.Step = int(step)
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if l.hasPrev {
		// The prediction input aliases the most recent entry's ring slot,
		// exactly as observe maintains it.
		l.prevEst = l.ring[count-1].Estimate
	} else {
		l.prevEst = nil
	}
	return nil
}
