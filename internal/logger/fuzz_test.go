package logger

import (
	"testing"

	"repro/internal/lti"
	"repro/internal/mat"
)

// FuzzBufferHoldRelease drives the Buffer/Hold/Release protocol
// (Sec. 3.3.2) with a fuzzer-chosen run: the first byte picks the
// maximum window w_m, then each subsequent byte contributes one
// observation (low nibble → estimate value) and one detection-window
// query (high nibble → w in [0, w_m]).
//
// After every step the full protocol contract is re-checked against a
// shadow copy of everything ever observed:
//
//   - exactly the steps [max(0, t−w_m−1), t] are retained — a sample is
//     never lost early, never duplicated, and never outlives the window;
//   - Observed − Released == Len (conservation);
//   - every retained estimate is bit-identical to what was fed;
//   - Counts/StatusOf/TrustedEstimate/Residuals agree with the shadow
//     model for the queried window.
func FuzzBufferHoldRelease(f *testing.F) {
	f.Add([]byte{3, 0x10, 0x21, 0x32, 0x43, 0x54, 0x65})
	f.Add([]byte{1, 0xff, 0x00, 0xff, 0x00})
	f.Add([]byte{8, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip("need a window byte and at least one observation")
		}
		wm := 1 + int(data[0])%8
		sys, err := lti.New(mat.Diag(0.5), mat.ColVec(mat.VecOf(1)), nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		l := New(sys, wm)

		var fed []float64 // shadow copy: fed[s] is the estimate observed at step s
		for _, b := range data[1:] {
			est := float64(int(b&0x0f) - 8)
			w := int(b>>4) % (wm + 1) // detection window in [0, w_m]

			e, err := l.Observe(mat.VecOf(est), mat.VecOf(0))
			if err != nil {
				t.Fatal(err)
			}
			fed = append(fed, est)
			step := len(fed) - 1
			if e.Step != step {
				t.Fatalf("Observe returned step %d, want %d", e.Step, step)
			}

			// Retention: exactly [lo, step] is live.
			lo := step - wm - 1
			if lo < 0 {
				lo = 0
			}
			if got, want := l.Len(), step-lo+1; got != want {
				t.Fatalf("step %d: Len = %d, want %d", step, got, want)
			}
			if l.Observed()-l.Released() != l.Len() {
				t.Fatalf("step %d: conservation broken: observed %d − released %d != len %d",
					step, l.Observed(), l.Released(), l.Len())
			}
			for s := 0; s <= step; s++ {
				got, ok := l.Entry(s)
				if s < lo {
					if ok {
						t.Fatalf("step %d: released sample %d still retained", step, s)
					}
					continue
				}
				if !ok {
					t.Fatalf("step %d: sample %d lost while inside the window", step, s)
				}
				if got.Step != s || got.Estimate[0] != fed[s] {
					t.Fatalf("step %d: entry %d corrupted: %+v, fed %v", step, s, got, fed[s])
				}
			}
			if _, ok := l.Entry(step + 1); ok {
				t.Fatalf("step %d: phantom future entry", step)
			}

			// The queried window's Buffer/Hold split matches the shadow model.
			buffered, held := l.Counts(w)
			wantBuf := 0
			for s := lo; s <= step; s++ {
				if s >= step-w {
					wantBuf++
				}
			}
			if buffered != wantBuf || buffered+held != l.Len() {
				t.Fatalf("step %d w=%d: Counts = (%d,%d), want buffered %d of %d",
					step, w, buffered, held, wantBuf, l.Len())
			}
			for s := lo; s <= step; s++ {
				want := Held
				if s >= step-w {
					want = Buffered
				}
				if got := l.StatusOf(s, w); got != want {
					t.Fatalf("step %d w=%d: StatusOf(%d) = %v, want %v", step, w, s, got, want)
				}
			}
			if lo > 0 {
				if got := l.StatusOf(lo-1, w); got != Released {
					t.Fatalf("step %d: StatusOf(%d) = %v, want Released", step, lo-1, got)
				}
			}

			// Trusted estimate for w is the shadow estimate at max(0, t−w−1);
			// it must always be available because w <= w_m keeps it retained.
			trusted, ok := l.TrustedEstimate(w)
			ts := step - w - 1
			if ts < 0 {
				ts = 0
			}
			if !ok || trusted[0] != fed[ts] {
				t.Fatalf("step %d w=%d: TrustedEstimate = %v,%v, want %v", step, w, trusted, ok, fed[ts])
			}

			// Residuals are all-or-nothing over retention.
			if res, ok := l.Residuals(lo, step); !ok || len(res) != l.Len() {
				t.Fatalf("step %d: Residuals over live range failed (%d, %v)", step, len(res), ok)
			}
			if lo > 0 {
				if _, ok := l.Residuals(lo-1, step); ok {
					t.Fatalf("step %d: Residuals accepted a released step", step)
				}
			}
		}
	})
}
