package logger

import (
	"testing"
	"testing/quick"

	"repro/internal/lti"
	"repro/internal/mat"
)

// Property-based tests of the sliding-window protocol invariants under
// arbitrary observation streams (testing/quick drives the inputs).

func quickSys() *lti.System {
	return lti.MustNew(mat.Diag(0.9), mat.ColVec(mat.VecOf(1)), nil, 1)
}

// Invariant: after any observation sequence, exactly the steps
// [max(0, t−w_m−1), t] are retained.
func TestQuickRetentionWindowInvariant(t *testing.T) {
	f := func(values []float64, wmRaw uint8) bool {
		if len(values) == 0 {
			return true
		}
		wm := int(wmRaw%20) + 1
		l := New(quickSys(), wm)
		for _, v := range values {
			must(l.Observe(mat.VecOf(clampQuick(v)), mat.VecOf(0)))
		}
		tNow := len(values) - 1
		first := tNow - wm - 1
		if first < 0 {
			first = 0
		}
		// Everything in [first, tNow] present; everything before absent.
		for s := first; s <= tNow; s++ {
			if _, ok := l.Entry(s); !ok {
				return false
			}
		}
		if first > 0 {
			if _, ok := l.Entry(first - 1); ok {
				return false
			}
		}
		return l.Current() == tNow
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Invariant: residuals are always element-wise non-negative and finite for
// finite inputs.
func TestQuickResidualNonNegativeInvariant(t *testing.T) {
	f := func(values []float64) bool {
		l := New(quickSys(), 8)
		for _, v := range values {
			e := must(l.Observe(mat.VecOf(clampQuick(v)), mat.VecOf(0)))
			for _, r := range e.Residual {
				if !(r >= 0) { // catches negatives and NaN
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Invariant: TrustedEstimate(w) always returns the estimate logged at step
// max(0, t−w−1) while that step is retained.
func TestQuickTrustedEstimateIndexInvariant(t *testing.T) {
	f := func(count uint8, wRaw uint8) bool {
		n := int(count%40) + 1
		wm := 15
		w := int(wRaw) % (wm + 1)
		l := New(quickSys(), wm)
		for i := 0; i < n; i++ {
			must(l.Observe(mat.VecOf(float64(i)), mat.VecOf(0)))
		}
		want := n - 1 - w - 1
		if want < 0 {
			want = 0
		}
		est, ok := l.TrustedEstimate(w)
		if want < n-wm-2 {
			// Released; protocol cannot supply it.
			return !ok
		}
		return ok && est[0] == float64(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Invariant: Residuals(from, to) returns exactly to−from+1 entries whenever
// the whole range is retained, and fails otherwise — never a partial slice.
func TestQuickResidualsAllOrNothingInvariant(t *testing.T) {
	f := func(count, fromRaw, lenRaw uint8) bool {
		n := int(count%30) + 1
		l := New(quickSys(), 10)
		for i := 0; i < n; i++ {
			must(l.Observe(mat.VecOf(0), mat.VecOf(0)))
		}
		from := int(fromRaw % 35)
		to := from + int(lenRaw%10)
		rs, ok := l.Residuals(from, to)
		oldest := n - 1 - 10 - 1
		if oldest < 0 {
			oldest = 0
		}
		inRange := from >= oldest && to <= n-1
		if inRange != ok {
			return false
		}
		return !ok || len(rs) == to-from+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampQuick(v float64) float64 {
	switch {
	case v != v: // NaN
		return 0
	case v > 1e6:
		return 1e6
	case v < -1e6:
		return -1e6
	default:
		return v
	}
}
