package logger

import (
	"testing"

	"repro/internal/lti"
	"repro/internal/mat"
)

// must unwraps a (value, error) pair from a call the test knows is valid.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// plant x_{t+1} = x_t + u_t, scalar.
func testSys(t *testing.T) *lti.System {
	t.Helper()
	s, err := lti.New(mat.Diag(1), mat.ColVec(mat.VecOf(1)), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFirstObservationZeroResidual(t *testing.T) {
	l := New(testSys(t), 5)
	e := must(l.Observe(mat.VecOf(3), mat.VecOf(0)))
	if e.Step != 0 {
		t.Errorf("first step = %d", e.Step)
	}
	if e.Residual[0] != 0 {
		t.Errorf("first residual = %v, want 0", e.Residual)
	}
}

func TestResidualMatchesPrediction(t *testing.T) {
	l := New(testSys(t), 5)
	must(l.Observe(mat.VecOf(1), nil))
	// Transition applied u=2: prediction = 1 + 2 = 3; estimate 3.5.
	e := must(l.Observe(mat.VecOf(3.5), mat.VecOf(2)))
	if e.Residual[0] != 0.5 {
		t.Errorf("residual = %v, want 0.5", e.Residual[0])
	}
	// Residual is absolute: an estimate below prediction gives the same.
	l2 := New(testSys(t), 5)
	must(l2.Observe(mat.VecOf(1), nil))
	e2 := must(l2.Observe(mat.VecOf(2.5), mat.VecOf(2)))
	if e2.Residual[0] != 0.5 {
		t.Errorf("abs residual = %v, want 0.5", e2.Residual[0])
	}
}

func TestNilInputTreatedAsZero(t *testing.T) {
	l := New(testSys(t), 5)
	must(l.Observe(mat.VecOf(1), nil))
	// nil transition input: prediction = 1 + 0 = 1.
	e := must(l.Observe(mat.VecOf(1.25), nil))
	if e.Residual[0] != 0.25 {
		t.Errorf("residual = %v, want 0.25", e.Residual[0])
	}
}

func TestReleaseKeepsSlidingWindow(t *testing.T) {
	wm := 4
	l := New(testSys(t), wm)
	for i := 0; i < 20; i++ {
		must(l.Observe(mat.VecOf(float64(i)), mat.VecOf(0)))
	}
	// Retained steps must be exactly [t - wm - 1, t] = [14, 19].
	if l.Len() != wm+2 {
		t.Fatalf("retained %d entries, want %d", l.Len(), wm+2)
	}
	if _, ok := l.Entry(13); ok {
		t.Error("step 13 should have been released")
	}
	if _, ok := l.Entry(14); !ok {
		t.Error("step 14 should be retained")
	}
	if _, ok := l.Entry(19); !ok {
		t.Error("current step should be retained")
	}
}

func TestEntryLookup(t *testing.T) {
	l := New(testSys(t), 10)
	for i := 0; i < 5; i++ {
		must(l.Observe(mat.VecOf(float64(i*i)), mat.VecOf(0)))
	}
	e, ok := l.Entry(3)
	if !ok || e.Estimate[0] != 9 {
		t.Errorf("Entry(3) = %+v ok=%v", e, ok)
	}
	if _, ok := l.Entry(5); ok {
		t.Error("future step lookup should fail")
	}
	if _, ok := l.Entry(-1); ok {
		t.Error("negative step lookup should fail")
	}
}

func TestResidualsRange(t *testing.T) {
	l := New(testSys(t), 10)
	for i := 0; i < 6; i++ {
		must(l.Observe(mat.VecOf(float64(i)*2), mat.VecOf(0))) // prediction is prev; residual 2 after first
	}
	rs, ok := l.Residuals(1, 5)
	if !ok || len(rs) != 5 {
		t.Fatalf("Residuals = %v entries, ok=%v", len(rs), ok)
	}
	for i, r := range rs {
		if r[0] != 2 {
			t.Errorf("residual %d = %v, want 2", i, r[0])
		}
	}
	if _, ok := l.Residuals(4, 2); ok {
		t.Error("inverted range should fail")
	}
	if _, ok := l.Residuals(0, 9); ok {
		t.Error("range beyond current should fail")
	}
}

func TestTrustedEstimate(t *testing.T) {
	l := New(testSys(t), 10)
	for i := 0; i < 8; i++ {
		must(l.Observe(mat.VecOf(float64(i)), mat.VecOf(0)))
	}
	// t = 7, window 3 => trusted step is 7-3-1 = 3.
	est, ok := l.TrustedEstimate(3)
	if !ok || est[0] != 3 {
		t.Errorf("TrustedEstimate(3) = %v ok=%v, want step-3 estimate", est, ok)
	}
	// Window so large it predates the run: clamps to the first entry.
	est, ok = l.TrustedEstimate(100)
	if !ok || est[0] != 0 {
		t.Errorf("clamped TrustedEstimate = %v ok=%v", est, ok)
	}
}

func TestTrustedEstimateReleased(t *testing.T) {
	l := New(testSys(t), 3)
	for i := 0; i < 20; i++ {
		must(l.Observe(mat.VecOf(float64(i)), mat.VecOf(0)))
	}
	// Step t-w-1 with w = wm is the oldest retained entry: must succeed.
	if _, ok := l.TrustedEstimate(3); !ok {
		t.Error("TrustedEstimate at exactly the sliding-window edge failed")
	}
}

func TestTrustedEstimateEmpty(t *testing.T) {
	l := New(testSys(t), 3)
	if _, ok := l.TrustedEstimate(1); ok {
		t.Error("TrustedEstimate on empty logger should fail")
	}
}

func TestTrustedEstimateNegativeWindow(t *testing.T) {
	l := New(testSys(t), 3)
	must(l.Observe(mat.VecOf(0), mat.VecOf(0)))
	if _, ok := l.TrustedEstimate(-1); ok {
		t.Error("negative window must report !ok, not a value")
	}
}

func TestStatusOf(t *testing.T) {
	wm := 5
	l := New(testSys(t), wm)
	for i := 0; i <= 20; i++ {
		must(l.Observe(mat.VecOf(0), mat.VecOf(0)))
	}
	// t = 20, detection window w = 3.
	w := 3
	if s := l.StatusOf(20, w); s != Buffered {
		t.Errorf("current step status = %v", s)
	}
	if s := l.StatusOf(17, w); s != Buffered {
		t.Errorf("t-w status = %v, want buffered", s)
	}
	if s := l.StatusOf(16, w); s != Held {
		t.Errorf("t-w-1 status = %v, want held", s)
	}
	if s := l.StatusOf(14, w); s != Held {
		t.Errorf("t-wm-1 status = %v, want held", s)
	}
	if s := l.StatusOf(13, w); s != Released {
		t.Errorf("pre-window status = %v, want released", s)
	}
}

func TestStatusString(t *testing.T) {
	if Buffered.String() != "buffered" || Held.String() != "held" || Released.String() != "released" {
		t.Error("status names wrong")
	}
	if Status(9).String() != "Status(9)" {
		t.Error("unknown status rendering wrong")
	}
}

func TestObserveDoesNotAliasArguments(t *testing.T) {
	l := New(testSys(t), 5)
	est := mat.VecOf(1)
	must(l.Observe(est, nil))
	est[0] = 99
	e, _ := l.Entry(0)
	if e.Estimate[0] != 1 {
		t.Error("logger aliased estimate")
	}
	// The prediction for the next step must use the original estimate 1.
	next := must(l.Observe(mat.VecOf(3), mat.VecOf(2)))
	if next.Residual[0] != 0 {
		t.Errorf("prediction used aliased estimate; residual = %v", next.Residual[0])
	}
}

func TestReset(t *testing.T) {
	l := New(testSys(t), 5)
	must(l.Observe(mat.VecOf(1), mat.VecOf(1)))
	must(l.Observe(mat.VecOf(2), mat.VecOf(1)))
	l.Reset()
	if l.Current() != -1 || l.Len() != 0 {
		t.Error("Reset incomplete")
	}
	e := must(l.Observe(mat.VecOf(5), mat.VecOf(0)))
	if e.Step != 0 || e.Residual[0] != 0 {
		t.Errorf("post-reset first entry = %+v", e)
	}
}

func TestBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(testSys(t), 0)
}

func TestObserveDimensionErrors(t *testing.T) {
	l := New(testSys(t), 5)
	if _, err := l.Observe(mat.VecOf(1, 2), mat.VecOf(0)); err == nil {
		t.Error("mismatched estimate dimension must error")
	}
	if _, err := l.Observe(mat.VecOf(1), mat.VecOf(0, 0)); err == nil {
		t.Error("mismatched input dimension must error")
	}
	// A rejected observation must not advance the log.
	if l.Current() != -1 || l.Len() != 0 {
		t.Errorf("rejected observation mutated the log: current=%d len=%d", l.Current(), l.Len())
	}
	// The logger still works after rejected observations.
	e := must(l.Observe(mat.VecOf(1), mat.VecOf(0)))
	if e.Step != 0 {
		t.Errorf("first accepted step = %d, want 0", e.Step)
	}
}

func TestObservedReleasedCounts(t *testing.T) {
	l := New(testSys(t), 3) // retains w_m + 2 = 5 entries
	for i := 0; i < 8; i++ {
		must(l.Observe(mat.VecOf(float64(i)), mat.VecOf(0)))
	}
	if got := l.Observed(); got != 8 {
		t.Errorf("Observed = %d, want 8", got)
	}
	if got := l.Released(); got != 3 {
		t.Errorf("Released = %d, want 3 (8 observed - 5 retained)", got)
	}
	if l.Observed()-l.Released() != l.Len() {
		t.Errorf("observed - released = %d, want occupancy %d",
			l.Observed()-l.Released(), l.Len())
	}
	// Window 1 at step 7 buffers [6, 7]; the rest of the retained range is
	// held history.
	buffered, held := l.Counts(1)
	if buffered != 2 || held != 3 {
		t.Errorf("Counts(1) = (%d, %d), want (2, 3)", buffered, held)
	}
	l.Reset()
	if l.Observed() != 0 || l.Released() != 0 {
		t.Errorf("after Reset: observed=%d released=%d", l.Observed(), l.Released())
	}
}

// TestObservePredictedMatchesObserve pins the fleet-engine contract: feeding
// the externally computed model prediction produces an entry stream
// bit-identical to the internal Observe path.
func TestObservePredictedMatchesObserve(t *testing.T) {
	sys := testSys(t)
	serial := New(sys, 5)
	batched := New(sys, 5)
	prev := mat.NewVec(1)
	pred := mat.NewVec(1)
	hasPrev := false
	for i := 0; i < 12; i++ {
		est := mat.VecOf(float64(i%4) + 0.125*float64(i))
		u := mat.VecOf(float64(i % 3))
		want := must(serial.Observe(est, u))
		if hasPrev {
			sys.PredictTo(pred, prev, u)
		}
		got := must(batched.ObservePredicted(est, pred))
		if want.Step != got.Step || want.Residual[0] != got.Residual[0] || want.Estimate[0] != got.Estimate[0] {
			t.Fatalf("step %d: predicted entry %+v != serial %+v", i, got, want)
		}
		est.CopyTo(prev)
		hasPrev = true
	}
}

func TestObservePredictedDimensionErrors(t *testing.T) {
	l := New(testSys(t), 5)
	if _, err := l.ObservePredicted(mat.VecOf(1), mat.VecOf(1, 2)); err == nil {
		t.Error("bad prediction dimension not rejected")
	}
	if _, err := l.ObservePredicted(mat.VecOf(1, 2), mat.VecOf(1)); err == nil {
		t.Error("bad estimate dimension not rejected")
	}
	if l.Len() != 0 {
		t.Errorf("failed observes must not log; len = %d", l.Len())
	}
}
