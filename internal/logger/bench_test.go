package logger

import (
	"testing"

	"repro/internal/lti"
	"repro/internal/mat"
)

func BenchmarkObserve(b *testing.B) {
	sys := lti.MustNew(mat.Diag(0.9, 0.8, 0.7), mat.ColVec(mat.VecOf(1, 0, 0)), nil, 0.02)
	l := New(sys, 40)
	est := mat.VecOf(1, 2, 3)
	u := mat.VecOf(0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Observe(est, u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResidualsWindow40(b *testing.B) {
	sys := lti.MustNew(mat.Diag(0.9), mat.ColVec(mat.VecOf(1)), nil, 0.02)
	l := New(sys, 40)
	for i := 0; i < 100; i++ {
		if _, err := l.Observe(mat.VecOf(float64(i)), mat.VecOf(0)); err != nil {
			b.Fatal(err)
		}
	}
	t := l.Current()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := l.Residuals(t-40, t); !ok {
			b.Fatal("window missing")
		}
	}
}
