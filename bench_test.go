package awd

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (at reduced Monte-Carlo scale — pass -benchtime or edit the
// run counts for paper-scale campaigns) and quantifies the runtime claims:
// per-step detector overhead and the precomputed-vs-naive reachability gap.
//
// One benchmark per evaluation artifact:
//
//	BenchmarkTable1Models          — Table 1 (model construction + render)
//	BenchmarkFig6Traces            — Fig. 6  (trace comparison panels)
//	BenchmarkFig7WindowSweep       — Fig. 7  (window-size profiling)
//	BenchmarkTable2Campaign        — Table 2 (adaptive vs fixed campaign)
//	BenchmarkFig8Testbed           — Fig. 8  (RC-car testbed scenario)
//
// plus the DESIGN.md ablations:
//
//	BenchmarkReachPrecomputedVsNaive
//	BenchmarkAblationComplementary
//	BenchmarkAblationMaxWindow
//	BenchmarkBaselineCUSUM
//	BenchmarkDetectorStep / BenchmarkDeadlineEstimation
import (
	"testing"

	"repro/internal/deadline"
	"repro/internal/exp"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/reach"
	"repro/internal/sim"
)

// BenchmarkTable1Models regenerates Table 1: construct (and discretize)
// all five plants and render their settings.
func BenchmarkTable1Models(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := exp.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig6Traces regenerates the Fig. 6 panels: vehicle turning and
// series RLC under bias/delay/replay, adaptive vs fixed.
func BenchmarkFig6Traces(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		panels, err := exp.Fig6(exp.Fig6Config{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 6 {
			b.Fatalf("panels = %d", len(panels))
		}
	}
}

// BenchmarkFig7WindowSweep regenerates a reduced Fig. 7 profile (3 runs per
// window, stride 25); scale Runs/Step up for the paper's 100×1 sweep.
func BenchmarkFig7WindowSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := exp.Fig7(exp.Fig7Config{Runs: 3, MaxWindow: 100, Step: 25, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 5 {
			b.Fatalf("points = %d", len(pts))
		}
	}
}

// BenchmarkTable2Campaign regenerates a reduced Table 2 (1 run per case;
// the paper uses 100). All 30 (simulator, attack, strategy) cases execute.
func BenchmarkTable2Campaign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table2(exp.Table2Config{Runs: 1, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 30 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig8Testbed regenerates the Fig. 8 testbed scenario.
func BenchmarkFig8Testbed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig8(exp.Fig8Config{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if r.AdaptiveAlert < 0 {
			b.Fatal("adaptive never alerted")
		}
	}
}

// BenchmarkReachPrecomputedVsNaive quantifies the deadline estimator's
// precomputation: evaluating the reachable-set box at every step of the
// horizon with the cached coefficient tables versus re-deriving Eq. (2)
// from scratch (the paper's low-overhead requirement, Sec. 1 challenge 2).
func BenchmarkReachPrecomputedVsNaive(b *testing.B) {
	m := models.AircraftPitch()
	x0 := mat.VecOf(0.1, 0, 0.2)
	const horizon = 40

	b.Run("precomputed", func(b *testing.B) {
		an, err := reach.New(m.Sys, m.U, m.Eps, horizon)
		if err != nil {
			b.Fatal(err)
		}
		s, err := an.Stepper(x0, 0)
		if err != nil {
			b.Fatal(err)
		}
		lo := make([]float64, m.Sys.StateDim())
		hi := make([]float64, m.Sys.StateDim())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Reset(x0, 0); err != nil {
				b.Fatal(err)
			}
			for s.Advance() {
				s.Bounds(lo, hi)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for t := 1; t <= horizon; t++ {
				_ = reach.NaiveReachBox(m.Sys, m.U, m.Eps, x0, t)
			}
		}
	})
}

// BenchmarkDetectorStep measures the full per-control-period cost of the
// assembled adaptive system (log + deadline search + window check) for the
// smallest and largest plants.
func BenchmarkDetectorStep(b *testing.B) {
	for _, m := range []*models.Model{models.VehicleTurning(), models.Quadrotor()} {
		b.Run(m.Name, func(b *testing.B) {
			det, err := sim.Detector(sim.Config{Model: m, Strategy: sim.Adaptive})
			if err != nil {
				b.Fatal(err)
			}
			est := m.X0.Clone()
			u := mat.NewVec(m.Sys.InputDim())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.Step(est, u)
			}
		})
	}
}

// BenchmarkDetectorStepObservability quantifies the telemetry layer's
// hot-path contract (ISSUE 1): with observability disabled (nil Observer)
// the per-step cost and allocation count must match the plain
// BenchmarkDetectorStep numbers; "metrics" adds the full atomic-instrument
// fan-out with a discard sink; "ring" adds flight-recorder trace retention.
func BenchmarkDetectorStepObservability(b *testing.B) {
	m := models.VehicleTurning()
	cases := []struct {
		name string
		obsv func() *obs.Observer
	}{
		{"disabled", func() *obs.Observer { return nil }},
		{"metrics", func() *obs.Observer { return obs.NewObserver(nil, obs.NopSink{}) }},
		{"ring", func() *obs.Observer { return obs.NewObserver(nil, obs.NewRingSink(1024)) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			det, err := sim.Detector(sim.Config{Model: m, Strategy: sim.Adaptive, Observer: c.obsv()})
			if err != nil {
				b.Fatal(err)
			}
			est := m.X0.Clone()
			u := mat.NewVec(m.Sys.InputDim())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.Step(est, u)
			}
		})
	}
}

// BenchmarkObserveStep isolates the Observer fan-out itself (no detector):
// the cost of one fully-populated StepEvent through the atomic instruments
// and the no-op sink. The contract is zero allocations.
func BenchmarkObserveStep(b *testing.B) {
	o := obs.NewObserver(nil, obs.NopSink{})
	res := []float64{0.01, 0.02, 0.03}
	ev := obs.StepEvent{
		Step: 1, Strategy: "adaptive", Window: 12, Deadline: 12,
		ResidualAvg: res, ReachTimed: true, ReachMicros: 7.5,
		LoggerLen: 14, LoggerObserved: 300, LoggerReleased: 286,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.ObserveStep(ev)
	}
}

// BenchmarkDeadlineEstimation isolates the reachability deadline search
// from a fixed trusted state, per plant.
func BenchmarkDeadlineEstimation(b *testing.B) {
	for _, m := range models.All() {
		b.Run(m.Name, func(b *testing.B) {
			an, err := reach.New(m.Sys, m.U, m.Eps, m.MaxWindow)
			if err != nil {
				b.Fatal(err)
			}
			est, err := deadline.New(an, m.Safe, m.EstimatorRadius())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = est.FromState(m.X0)
			}
		})
	}
}

// BenchmarkAblationComplementary runs the complementary-detection on/off
// comparison (1 run per case here; see cmd/awdexp -exp ablations for the
// full campaign).
func BenchmarkAblationComplementary(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationComplementary(1, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 20 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkAblationMaxWindow sweeps the maximum window design knob.
func BenchmarkAblationMaxWindow(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationMaxWindow(1, uint64(i+1), []int{10, 40, 80})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkBaselineCUSUM compares the adaptive detector against CUSUM.
func BenchmarkBaselineCUSUM(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationCUSUM(1, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 15 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkExtendedScenarios runs the freeze/ramp/noise threat-model
// extension campaign (1 run per case).
func BenchmarkExtendedScenarios(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.ExtendedScenarios(1, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 30 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkRecoveryStudy couples detection to LQR recovery (1 run/case).
func BenchmarkRecoveryStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.RecoveryStudy(1, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkThresholdSweep profiles the τ knob (3 multipliers, 2 runs each).
func BenchmarkThresholdSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := exp.ThresholdSweep(2, uint64(i+1), []float64{0.5, 1, 2})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 3 {
			b.Fatalf("points = %d", len(pts))
		}
	}
}

// BenchmarkDeadlineValidation runs the Definition 3.1 conservativeness
// check (reduced scale).
func BenchmarkDeadlineValidation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.DeadlineValidation(4, 3, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Violations != 0 {
				b.Fatalf("%s: conservativeness violated", r.Simulator)
			}
		}
	}
}

// BenchmarkMagnitudeSweep maps the detectability boundary (reduced scale).
func BenchmarkMagnitudeSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := exp.MagnitudeSweep(2, uint64(i+1), []float64{0.5, 1, 2})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 3 {
			b.Fatalf("points = %d", len(pts))
		}
	}
}

// BenchmarkStealthyImpact runs the stealthy-adversary limit study (reduced).
func BenchmarkStealthyImpact(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.StealthyImpact(1, uint64(i+1), []float64{0.5})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}
