package awd

import (
	"math"
	"testing"
)

// must unwraps a (value, error) pair from a call the test knows is valid.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func scalarCfg() DetectorConfig {
	return DetectorConfig{
		A: [][]float64{{1}}, B: [][]float64{{1}}, Dt: 1,
		InputLow: []float64{-1}, InputHigh: []float64{1},
		Eps:     0,
		SafeLow: []float64{-10}, SafeHigh: []float64{10},
		Tau:       []float64{0.5},
		MaxWindow: 8,
	}
}

func TestNewDetectorValidation(t *testing.T) {
	cases := map[string]func(DetectorConfig) DetectorConfig{
		"empty A":         func(c DetectorConfig) DetectorConfig { c.A = nil; return c },
		"B rows":          func(c DetectorConfig) DetectorConfig { c.B = [][]float64{{1}, {1}}; return c },
		"input bounds":    func(c DetectorConfig) DetectorConfig { c.InputLow = nil; return c },
		"unbounded input": func(c DetectorConfig) DetectorConfig { c.InputHigh = []float64{math.Inf(1)}; return c },
		"safe bounds":     func(c DetectorConfig) DetectorConfig { c.SafeLow = []float64{0, 0}; return c },
		"tau":             func(c DetectorConfig) DetectorConfig { c.Tau = []float64{1, 2}; return c },
		"max window":      func(c DetectorConfig) DetectorConfig { c.MaxWindow = 0; return c },
	}
	for name, mut := range cases {
		if _, err := NewDetector(mut(scalarCfg())); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	if _, err := NewDetector(scalarCfg()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestDetectorAlarmsOnAttack(t *testing.T) {
	det, err := NewDetector(scalarCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Clean steps: constant state, zero input → zero residuals.
	for i := 0; i < 10; i++ {
		if dec := must(det.Step([]float64{1}, []float64{0})); dec.Alarm() {
			t.Fatalf("clean step %d alarmed", i)
		}
	}
	// Spoofed jump: residual 4 > τ in any window.
	alarmed := false
	v := 1.0
	for i := 0; i < 5 && !alarmed; i++ {
		v += 4
		alarmed = must(det.Step([]float64{v}, []float64{0})).Alarm()
	}
	if !alarmed {
		t.Error("attack never detected")
	}
}

func TestDetectorDeadlineShrinksNearBoundary(t *testing.T) {
	det, err := NewDetector(scalarCfg())
	if err != nil {
		t.Fatal(err)
	}
	var far, near Decision
	for i := 0; i < 12; i++ {
		far = must(det.Step([]float64{0}, []float64{0}))
	}
	det.Reset()
	for i := 0; i < 12; i++ {
		near = must(det.Step([]float64{9.3}, []float64{0}))
	}
	if near.Deadline >= far.Deadline {
		t.Errorf("deadline near boundary (%d) should be tighter than far (%d)",
			near.Deadline, far.Deadline)
	}
	if near.Window != near.Deadline {
		t.Errorf("window %d should track deadline %d", near.Window, near.Deadline)
	}
}

func TestDetectorFixedWindowVariant(t *testing.T) {
	cfg := scalarCfg()
	cfg.FixedWindow = 3
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec := must(det.Step([]float64{0}, nil))
	if dec.Window != 3 || dec.Deadline != 0 {
		t.Errorf("fixed decision = %+v", dec)
	}
}

func TestDetectorReset(t *testing.T) {
	det, err := NewDetector(scalarCfg())
	if err != nil {
		t.Fatal(err)
	}
	must(det.Step([]float64{1}, nil))
	must(det.Step([]float64{2}, nil))
	det.Reset()
	if dec := must(det.Step([]float64{5}, nil)); dec.Step != 0 || dec.Alarm() {
		t.Errorf("post-reset decision = %+v", dec)
	}
}

func TestModelsRegistry(t *testing.T) {
	ms := Models()
	if len(ms) != 6 {
		t.Fatalf("models = %d, want 6", len(ms))
	}
	byName := map[string]ModelInfo{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	if byName["quadrotor"].StateDim != 12 || byName["quadrotor"].InputDim != 4 {
		t.Errorf("quadrotor dims wrong: %+v", byName["quadrotor"])
	}
	if byName["testbed-car"].Dt != 0.05 {
		t.Errorf("testbed dt wrong: %+v", byName["testbed-car"])
	}
}

func TestRunScenarioBias(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{Model: "vehicle-turning", Attack: "bias", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || res.DeadlineMissed {
		t.Errorf("adaptive bias scenario: %+v", res)
	}
	resF, err := RunScenario(ScenarioConfig{Model: "vehicle-turning", Attack: "bias", Strategy: "fixed", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resF.Detected && resF.DetectionDelay < res.DetectionDelay {
		t.Errorf("fixed should not beat adaptive: %+v vs %+v", resF, res)
	}
}

func TestRunScenarioValidation(t *testing.T) {
	if _, err := RunScenario(ScenarioConfig{Model: "nope"}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := RunScenario(ScenarioConfig{Model: "quadrotor", Attack: "emp"}); err == nil {
		t.Error("unknown attack accepted")
	}
	if _, err := RunScenario(ScenarioConfig{Model: "quadrotor", Strategy: "psychic"}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunScenarioDefaultsToCleanRun(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{Model: "series-rlc", Seed: 2, Steps: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackStart != -1 || res.Detected {
		t.Errorf("clean scenario: %+v", res)
	}
}

func TestRunScenarioCUSUM(t *testing.T) {
	if _, err := RunScenario(ScenarioConfig{Model: "series-rlc", Attack: "bias", Strategy: "cusum", Seed: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRecoveryScenario(t *testing.T) {
	res, err := RunRecoveryScenario(ScenarioConfig{Model: "series-rlc", Attack: "bias", Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.AlarmStep < 0 {
		t.Fatal("recovery never engaged")
	}
	if !res.FinalSafe {
		t.Errorf("recovery ended unsafe: %+v", res)
	}
	if _, err := RunRecoveryScenario(ScenarioConfig{Model: "nope"}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := RunRecoveryScenario(ScenarioConfig{Model: "series-rlc", Strategy: "psychic"}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunScenarioEWMA(t *testing.T) {
	if _, err := RunScenario(ScenarioConfig{Model: "series-rlc", Attack: "bias", Strategy: "ewma", Seed: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateDeadline(t *testing.T) {
	det, err := NewDetector(scalarCfg())
	if err != nil {
		t.Fatal(err)
	}
	far, err := det.EstimateDeadline([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	near, err := det.EstimateDeadline([]float64{9.5})
	if err != nil {
		t.Fatal(err)
	}
	if near >= far {
		t.Errorf("near deadline %d should be tighter than far %d", near, far)
	}
	cfgF := scalarCfg()
	cfgF.FixedWindow = 3
	detF, err := NewDetector(cfgF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := detF.EstimateDeadline([]float64{0}); err == nil {
		t.Error("fixed variant should have no estimator")
	}
}

func TestDecisionDimsAttribution(t *testing.T) {
	det, err := NewDetector(scalarCfg())
	if err != nil {
		t.Fatal(err)
	}
	must(det.Step([]float64{0}, nil))
	var dec Decision
	v := 0.0
	for i := 0; i < 5 && !dec.Alarm(); i++ {
		v += 5
		dec = must(det.Step([]float64{v}, nil))
	}
	if !dec.Alarm() || len(dec.Dims) != 1 || dec.Dims[0] != 0 {
		t.Errorf("facade dims = %+v", dec)
	}
}
